type t = {
  sched : Oib_sim.Sched.t;
  metrics : Oib_sim.Metrics.t;
  log : Oib_wal.Log_manager.t;
  store : Stable_store.t;
  cache : (int, Page.t) Hashtbl.t;
  mutable next_page_id : int;
}

let create ~sched ~metrics ~log ~store =
  {
    sched;
    metrics;
    log;
    store;
    cache = Hashtbl.create 256;
    (* after a crash, page ids must not be reused *)
    next_page_id = Stable_store.max_page_id store + 1;
  }

let sched t = t.sched
let metrics t = t.metrics
let log t = t.log
let store t = t.store

(* Role-labeled page-traffic counters in the central registry (e.g.
   [pool.page_read{role=heap}]) — find-or-create by rendered name, so no
   handle plumbing; a no-op when no registry is attached. *)
let bump t name ~role =
  match Oib_sim.Metrics.registry t.metrics with
  | Some reg ->
    Oib_obs.Registry.incr
      (Oib_obs.Registry.counter reg ~labels:[ ("role", role) ] name)
  | None -> ()

let new_page ?role t ~payload ~copy_payload =
  let id = t.next_page_id in
  t.next_page_id <- id + 1;
  let page =
    Page.make ?role ~id ~sched:t.sched ~metrics:t.metrics ~payload
      ~copy_payload ()
  in
  page.dirty <- true;
  Hashtbl.replace t.cache id page;
  page

let get ?role t id =
  match Hashtbl.find_opt t.cache id with
  | Some p -> p
  | None -> begin
    match Stable_store.read t.store id with
    | None -> raise Not_found
    | Some { payload; lsn; copy_payload } ->
      t.metrics.page_reads <- t.metrics.page_reads + 1;
      bump t "pool.page_read" ~role:(Option.value role ~default:"page");
      Oib_sim.Metrics.charge t.metrics (fun (r : Oib_obs.Resource.t) ->
          r.pages_read <- r.pages_read + 1);
      let tr = Oib_sim.Sched.trace t.sched in
      let span =
        Oib_obs.Trace.span_begin tr ~cat:"io"
          ~name:(Printf.sprintf "read:page-%d" id)
      in
      if Oib_obs.Trace.tracing tr then
        Oib_obs.Trace.emit tr (Oib_obs.Event.Page_read { page = id });
      let page =
        Page.make ?role ~id ~sched:t.sched ~metrics:t.metrics
          ~payload:(copy_payload payload) ~copy_payload ()
      in
      page.lsn <- lsn;
      Hashtbl.replace t.cache id page;
      Oib_obs.Trace.span_end tr span;
      page
  end

let mem t id = Hashtbl.mem t.cache id || Stable_store.mem t.store id

let install ?role t id ~payload ~copy_payload =
  if mem t id then invalid_arg "Buffer_pool.install: page exists";
  let page =
    Page.make ?role ~id ~sched:t.sched ~metrics:t.metrics ~payload
      ~copy_payload ()
  in
  page.dirty <- true;
  Hashtbl.replace t.cache id page;
  if id >= t.next_page_id then t.next_page_id <- id + 1;
  page

(* The page write-back shared by the live path (which forces the log
   first) and the test-only WAL-bypass (which must be observable as a
   steal-before-flush by the sanitizer). *)
let write_back t (page : Page.t) =
  let tr = Oib_sim.Sched.trace t.sched in
  t.metrics.page_writes <- t.metrics.page_writes + 1;
  bump t "pool.page_write" ~role:(Oib_sim.Latch.role page.latch);
  Oib_sim.Metrics.charge t.metrics (fun (r : Oib_obs.Resource.t) ->
      r.pages_written <- r.pages_written + 1);
  if Oib_obs.Trace.tracing tr then
    Oib_obs.Trace.emit tr (Oib_obs.Event.Page_write { page = page.id });
  if Oib_obs.Trace.probing tr then
    Oib_obs.Trace.probe_emit tr
      (Oib_obs.Probe.Write_back
         {
           page = page.id;
           page_lsn = Oib_wal.Lsn.to_int page.lsn;
           flushed_lsn =
             Oib_wal.Lsn.to_int (Oib_wal.Log_manager.flushed_lsn t.log);
         });
  Stable_store.write t.store page.id
    {
      Stable_store.payload = page.copy_payload page.payload;
      lsn = page.lsn;
      copy_payload = page.copy_payload;
    };
  page.dirty <- false

let flush_page t (page : Page.t) =
  if page.dirty then begin
    let tr = Oib_sim.Sched.trace t.sched in
    let span =
      Oib_obs.Trace.span_begin tr ~cat:"io"
        ~name:(Printf.sprintf "write:page-%d" page.id)
    in
    (* write-ahead rule; its logflush span nests inside this io span *)
    Oib_wal.Log_manager.flush t.log ~upto:page.lsn;
    write_back t page;
    Oib_obs.Trace.span_end tr span
  end

let unsafe_steal_without_wal t (page : Page.t) =
  if page.dirty then write_back t page

let flush_all t =
  let pages = Hashtbl.fold (fun _ p acc -> p :: acc) t.cache [] in
  let pages = List.sort (fun (a : Page.t) b -> compare a.id b.id) pages in
  (* no-steal pages (index pages between sharp image checkpoints) are only
     written by their owner's explicit checkpoint *)
  List.iter
    (fun (p : Page.t) -> if not p.no_steal then flush_page t p)
    pages

let flush_some t rng p =
  Hashtbl.iter
    (fun _ page ->
      if page.Page.dirty && (not page.Page.no_steal) && Oib_util.Rng.chance rng p
      then flush_page t page)
    t.cache

let reserve_page_ids t ~upto =
  if upto >= t.next_page_id then t.next_page_id <- upto + 1

let probe_evict t id =
  let tr = Oib_sim.Sched.trace t.sched in
  if Oib_obs.Trace.probing tr then
    Oib_obs.Trace.probe_emit tr (Oib_obs.Probe.Page_evict { page = id })

let note_evict t id =
  match Hashtbl.find_opt t.cache id with
  | None -> ()
  | Some page ->
    probe_evict t id;
    bump t "pool.page_evict" ~role:(Oib_sim.Latch.role page.Page.latch);
    Oib_sim.Metrics.charge t.metrics (fun (r : Oib_obs.Resource.t) ->
        r.pages_evicted <- r.pages_evicted + 1)

let evict t id =
  note_evict t id;
  Hashtbl.remove t.cache id

let drop t id =
  note_evict t id;
  Hashtbl.remove t.cache id;
  Stable_store.remove t.store id

let dirty_count t =
  Hashtbl.fold (fun _ p acc -> if p.Page.dirty then acc + 1 else acc) t.cache 0

let cached_count t = Hashtbl.length t.cache
