(** Buffer pool with steal / no-force semantics.

    Dirty pages may be written back before their transaction commits
    (*steal*) and need not be written at commit (*no-force*); the
    write-ahead rule — force the log up to a page's page_LSN before writing
    the page — is enforced here. A simulated crash discards the pool; a new
    pool over the same stable store and the survivor log is what restart
    recovery starts from. *)

type t

val create :
  sched:Oib_sim.Sched.t ->
  metrics:Oib_sim.Metrics.t ->
  log:Oib_wal.Log_manager.t ->
  store:Stable_store.t ->
  t

val sched : t -> Oib_sim.Sched.t
val metrics : t -> Oib_sim.Metrics.t
val log : t -> Oib_wal.Log_manager.t
val store : t -> Stable_store.t

val new_page :
  ?role:string ->
  t -> payload:Page.payload -> copy_payload:(Page.payload -> Page.payload) ->
  Page.t
(** Allocate a fresh page (monotonically increasing id). [role] tags the
    page's latch for the sanitizer (see {!Page.make}). *)

val get : ?role:string -> t -> int -> Page.t
(** Fetch a page; reads from the stable store on a miss (counted as a page
    read — [role] tags the rebuilt page object on that path). Raises
    [Not_found] if the page exists nowhere. *)

val install :
  ?role:string ->
  t -> int -> payload:Page.payload ->
  copy_payload:(Page.payload -> Page.payload) -> Page.t
(** Recreate a page under a *specific* id with fresh contents — used by
    redo when a page named in the log was never written to stable storage
    before the crash. Raises [Invalid_argument] if the page exists. *)

val reserve_page_ids : t -> upto:int -> unit
(** Never hand out ids [<= upto] from {!new_page}. A fresh pool seeds its
    allocator from the stable store's highest *flushed* page, but the
    durable log may name heap pages above that (logged, never written
    back). Recovery must reserve those before any allocation, or a
    recovery-time [new_page] (e.g. replaying the [Create_index] of a later
    dropped build) squats on an id redo is about to reinstall. *)

val mem : t -> int -> bool

val flush_page : t -> Page.t -> unit
(** Write one page back (WAL rule enforced); clears its dirty bit. *)

val unsafe_steal_without_wal : t -> Page.t -> unit
(** Test-only: write the page back {e without} forcing the log first — a
    deliberate write-ahead-rule violation. Exists so the oib-san WAL
    verifier's steal-before-flush check can be exercised; never called
    from library code. *)

val flush_all : t -> unit
(** Flush every dirty page except [no_steal] ones (a system checkpoint;
    index pages are imaged by their tree's own sharp checkpoint). *)

val flush_some : t -> Oib_util.Rng.t -> float -> unit
(** Flush each dirty page with the given probability — simulates the
    background writer having *stolen* an arbitrary subset of dirty pages
    before a crash, which is what makes undo necessary. Pages marked
    [no_steal] are skipped. *)

val evict : t -> int -> unit
(** Remove a page from the cache only; the stable copy (if any) remains.
    Used when abandoning volatile page state (e.g. SF's reset of index
    pages allocated after the last index checkpoint). *)

val drop : t -> int -> unit
(** Discard a page from pool and stable store (file deallocation). *)

val dirty_count : t -> int
val cached_count : t -> int
