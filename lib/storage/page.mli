(** Buffered pages.

    A page couples a payload (heap slots, index node, …) with the physical
    machinery the algorithms depend on: a latch for short-term physical
    consistency, a page_LSN driving the write-ahead rule and redo, and a
    dirty flag for the buffer pool. Payloads are an open variant so higher
    layers (heap, B-tree, side-file) can define their own page kinds without
    this module knowing them; each page carries the copy function used to
    snapshot it into the stable store. *)

type payload = ..

type t = {
  id : int;
  latch : Oib_sim.Latch.t;
  mutable lsn : Oib_wal.Lsn.t;
  mutable payload : payload;
  copy_payload : payload -> payload;
  mutable dirty : bool;
  mutable no_steal : bool;
      (** Excluded from background (steal) write-back; written only by
          explicit flushes. Index pages are no-steal between sharp index
          checkpoints — that is what keeps the stable index image
          consistent with its checkpoint LSN, making logical index redo
          sound without physically logging page splits. *)
}

val make :
  ?role:string ->
  id:int ->
  sched:Oib_sim.Sched.t ->
  metrics:Oib_sim.Metrics.t ->
  payload:payload ->
  copy_payload:(payload -> payload) ->
  unit ->
  t
(** [role] (default ["page"]) names the structure the page belongs to
    ("Heap_file", "Btree", …); it becomes the page latch's node in the
    sanitizer's latch-order graph. *)

val set_lsn : t -> Oib_wal.Lsn.t -> unit
(** Record that the log record with this LSN modified the page; also marks
    the page dirty. *)

val mark_dirty : t -> unit
