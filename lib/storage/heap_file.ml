open Oib_util

type Durable_kv.value += Pages of int list (* newest first *)

type t = {
  pool : Buffer_pool.t;
  kv : Durable_kv.t;
  table_id : int;
  page_capacity : int;
  mutable pages_rev : int list; (* newest first *)
  (* free-space inventory (approximate, like a real FSIP): page ids
     believed to have room; revalidated under the page latch *)
  mutable fsip : int list;
}

type Durable_kv.value += Capacity of int

let meta_key id = Printf.sprintf "table/%d/pages" id
let cap_key id = Printf.sprintf "table/%d/capacity" id

let persist t =
  Durable_kv.set t.kv (meta_key t.table_id) (Pages t.pages_rev)

let create pool kv ~table_id ~page_capacity =
  if Durable_kv.mem kv (meta_key table_id) then
    invalid_arg "Heap_file.create: table already exists";
  let t = { pool; kv; table_id; page_capacity; pages_rev = []; fsip = [] } in
  Durable_kv.set kv (cap_key table_id) (Capacity page_capacity);
  persist t;
  t

let open_existing pool kv ~table_id =
  let pages_rev =
    match Durable_kv.get kv (meta_key table_id) with
    | Some (Pages l) -> l
    | _ -> raise Not_found
  in
  let page_capacity =
    match Durable_kv.get kv (cap_key table_id) with
    | Some (Capacity c) -> c
    | _ -> raise Not_found
  in
  { pool; kv; table_id; page_capacity; pages_rev; fsip = List.rev pages_rev }

let table_id t = t.table_id

let page_ids t = List.rev t.pages_rev

let page_count t = List.length t.pages_rev

let last_page_id t = match t.pages_rev with [] -> None | id :: _ -> Some id

let page t id = Buffer_pool.get ~role:"Heap_file" t.pool id

let extend t =
  let p =
    Buffer_pool.new_page ~role:"Heap_file" t.pool
      ~payload:(Heap_page.Heap (Heap_page.create ~capacity:t.page_capacity))
      ~copy_payload:Heap_page.copy_payload
  in
  t.pages_rev <- p.Page.id :: t.pages_rev;
  persist t;
  (* redo-only record: media recovery rebuilds the page inventory from the
     log, since the forced metadata store may be part of the lost disk *)
  ignore
    (Oib_wal.Log_manager.append (Buffer_pool.log t.pool) ~txn:None
       ~prev_lsn:Oib_wal.Lsn.nil
       (Oib_wal.Log_record.Heap_extend { table = t.table_id; page = p.Page.id }));
  p

let ensure_page_registered t id =
  if not (List.mem id t.pages_rev) then begin
    (* keep allocation order: pages_rev is newest-first *)
    t.pages_rev <- List.sort (fun a b -> compare b a) (id :: t.pages_rev);
    persist t
  end

(* Placement consults the free-space inventory first, falling back to a
   full first-fit scan (which rebuilds the inventory), and extends the
   file as a last resort. Checking [fits] without the latch is a benign
   race in this cooperative setting: the state cannot change between the
   check and the X-latch acquisition unless we block, in which case we
   re-check after acquiring. *)
let try_page t id record =
  let p = page t id in
  if Heap_page.fits (Heap_page.of_payload p.Page.payload) record then begin
    Oib_sim.Latch.acquire p.Page.latch X;
    let hp = Heap_page.of_payload p.Page.payload in
    if Heap_page.fits hp record then Some (p, Heap_page.reserve hp record)
    else begin
      Oib_sim.Latch.release p.Page.latch X;
      None
    end
  end
  else None

let prepare_insert t record =
  (* 1. inventory hits (dropping stale entries) *)
  let rec from_fsip () =
    match t.fsip with
    | [] -> None
    | id :: rest -> (
      match try_page t id record with
      | Some r -> Some r
      | None ->
        t.fsip <- rest;
        from_fsip ())
  in
  match from_fsip () with
  | Some r -> r
  | None -> (
    (* 2. full scan, rebuilding the inventory as a side effect *)
    let rec search = function
      | [] -> None
      | id :: rest -> (
        match try_page t id record with
        | Some r ->
          t.fsip <- id :: rest;
          Some r
        | None -> search rest)
    in
    match search (page_ids t) with
    | Some r -> r
    | None ->
      (* 3. extend *)
      let p = extend t in
      Oib_sim.Latch.acquire p.Page.latch X;
      let hp = Heap_page.of_payload p.Page.payload in
      t.fsip <- [ p.Page.id ];
      (p, Heap_page.reserve hp record))
[@@lint.allow
  "L1: returns an X-latched page with space reserved; the caller applies \
   the insert, logs it, and releases the latch"]

let note_free t id =
  if not (List.mem id t.fsip) then t.fsip <- id :: t.fsip

let latch_rid t rid mode =
  let p = page t rid.Rid.page in
  Oib_sim.Latch.acquire p.Page.latch mode;
  p

let read_record t rid =
  let p = latch_rid t rid S in
  let r = Heap_page.get (Heap_page.of_payload p.Page.payload) rid.Rid.slot in
  Oib_sim.Latch.release p.Page.latch S;
  r

let scan_pages t ~upto f =
  List.iter (fun id -> if id <= upto then f (page t id)) (page_ids t)

let record_count t =
  List.fold_left
    (fun acc id ->
      acc + Heap_page.record_count (Heap_page.of_payload (page t id).Page.payload))
    0 (page_ids t)

let all_records t =
  let acc = ref [] in
  List.iter
    (fun id ->
      let hp = Heap_page.of_payload (page t id).Page.payload in
      Heap_page.iter hp (fun slot r ->
          acc := (Rid.make ~page:id ~slot, r) :: !acc))
    (page_ids t);
  List.rev !acc
