type payload = ..

type t = {
  id : int;
  latch : Oib_sim.Latch.t;
  mutable lsn : Oib_wal.Lsn.t;
  mutable payload : payload;
  copy_payload : payload -> payload;
  mutable dirty : bool;
  mutable no_steal : bool;
}

let make ?(role = "page") ~id ~sched ~metrics ~payload ~copy_payload () =
  {
    id;
    latch =
      Oib_sim.Latch.create
        ~name:(Printf.sprintf "page-%d" id)
        ~role ~page:id sched metrics;
    lsn = Oib_wal.Lsn.nil;
    payload;
    copy_payload;
    dirty = false;
    no_steal = false;
  }

let set_lsn t lsn =
  (let tr = Oib_sim.Latch.trace t.latch in
   if Oib_obs.Trace.probing tr then begin
     Oib_obs.Trace.probe_emit tr
       (Oib_obs.Probe.Lsn_set
          {
            page = t.id;
            old_lsn = Oib_wal.Lsn.to_int t.lsn;
            new_lsn = Oib_wal.Lsn.to_int lsn;
            site = "Page.set_lsn";
          });
     Oib_obs.Trace.probe_emit tr
       (Oib_obs.Probe.Access
          { page = t.id; write = true; site = "Page.set_lsn" })
   end);
  t.lsn <- lsn;
  t.dirty <- true

let mark_dirty t =
  (let tr = Oib_sim.Latch.trace t.latch in
   if Oib_obs.Trace.probing tr then
     Oib_obs.Trace.probe_emit tr
       (Oib_obs.Probe.Access
          { page = t.id; write = true; site = "Page.mark_dirty" }));
  t.dirty <- true
