open Oib_util
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event

type mode = S | X | IS | IX

type name = Record of Rid.t | Table of int

let mode_string = function S -> "S" | X -> "X" | IS -> "IS" | IX -> "IX"

let name_string = function
  | Record rid -> Format.asprintf "rec%a" Rid.pp rid
  | Table id -> "table:" ^ string_of_int id

type outcome = Granted | Deadlock

let compatible a b =
  match (a, b) with
  | IS, (IS | IX | S) | (IX | S), IS -> true
  | IX, IX -> true
  | S, S -> true
  | X, _ | _, X -> false
  | IX, S | S, IX -> false

(* Does holding [held] already cover a request for [want]? *)
let covers held want =
  match (held, want) with
  | X, _ -> true
  | S, (S | IS) -> true
  | IX, (IX | IS) -> true
  | IS, IS -> true
  | _ -> false

(* Least upper bound used for lock conversion. S+IX would be SIX, which we
   conservatively strengthen to X. *)
let join a b =
  if covers a b then a
  else if covers b a then b
  else
    match (a, b) with
    | IS, IX | IX, IS -> IX
    | IS, S | S, IS -> S
    | _ -> X

type request = { txn : int; mutable mode : mode }

type waiter = {
  w_txn : int;
  w_mode : mode; (* target mode after grant (joined, for conversions) *)
  w_resume : unit -> unit;
}

type entry = { mutable granted : request list; mutable waiters : waiter list }

type t = {
  sched : Oib_sim.Sched.t;
  metrics : Oib_sim.Metrics.t;
  entries : (name, entry) Hashtbl.t;
  held : (int, name list) Hashtbl.t;
  waiting_on : (int, name) Hashtbl.t;
}

let create sched metrics =
  {
    sched;
    metrics;
    entries = Hashtbl.create 256;
    held = Hashtbl.create 64;
    waiting_on = Hashtbl.create 16;
  }

let entry t name =
  match Hashtbl.find_opt t.entries name with
  | Some e -> e
  | None ->
    let e = { granted = []; waiters = [] } in
    Hashtbl.replace t.entries name e;
    e

let find_request e txn = List.find_opt (fun r -> r.txn = txn) e.granted

(* Is [mode] compatible with every other holder? *)
let holders_compatible e ~txn ~mode =
  List.for_all (fun r -> r.txn = txn || compatible r.mode mode) e.granted

(* Can a brand-new request be granted immediately? Conversions only care
   about the other holders; fresh requests also queue behind existing
   waiters (FIFO, no starvation). *)
let grantable e ~txn ~mode ~conversion =
  holders_compatible e ~txn ~mode && (conversion || e.waiters = [])

let grant t name e ~txn ~mode =
  match find_request e txn with
  | Some r -> r.mode <- join r.mode mode
  | None ->
    e.granted <- { txn; mode } :: e.granted;
    let names = Option.value ~default:[] (Hashtbl.find_opt t.held txn) in
    Hashtbl.replace t.held txn (name :: names)

let drop_request t name e ~txn =
  e.granted <- List.filter (fun r -> r.txn <> txn) e.granted;
  let names = Option.value ~default:[] (Hashtbl.find_opt t.held txn) in
  Hashtbl.replace t.held txn (List.filter (fun n -> n <> name) names)

(* Wake waiters that are now grantable, in FIFO order; stop at the first
   that is not (preserves fairness). Conversions are enqueued at the front
   so they are considered first. *)
let pump t name e =
  let rec go () =
    match e.waiters with
    | [] -> ()
    | w :: rest ->
      (* the head of the queue has nobody ahead of it: only holder
         compatibility matters *)
      e.waiters <- rest;
      if holders_compatible e ~txn:w.w_txn ~mode:w.w_mode then begin
        Hashtbl.remove t.waiting_on w.w_txn;
        grant t name e ~txn:w.w_txn ~mode:w.w_mode;
        w.w_resume ();
        go ()
      end
      else e.waiters <- w :: e.waiters
  in
  go ()

(* Deadlock test: would blocking [txn] on [name] close a waits-for cycle?
   A blocked transaction waits for every incompatible holder and,
   conservatively, for every queued waiter on the same entry. *)
let would_deadlock t ~txn name ~mode =
  let blockers_of name ~txn ~mode =
    let e = entry t name in
    let holders =
      List.filter_map
        (fun r ->
          if r.txn <> txn && not (compatible r.mode mode) then Some r.txn
          else None)
        e.granted
    in
    let queued =
      List.filter_map
        (fun w -> if w.w_txn <> txn then Some w.w_txn else None)
        e.waiters
    in
    holders @ queued
  in
  let visited = Hashtbl.create 8 in
  let rec reaches target who =
    if who = target then true
    else if Hashtbl.mem visited who then false
    else begin
      Hashtbl.replace visited who ();
      match Hashtbl.find_opt t.waiting_on who with
      | None -> false
      | Some blocked_name -> (
        let e = entry t blocked_name in
        match List.find_opt (fun w -> w.w_txn = who) e.waiters with
        | None -> false
        | Some w ->
          List.exists (reaches target)
            (blockers_of blocked_name ~txn:who ~mode:w.w_mode))
    end
  in
  List.exists (reaches txn) (blockers_of name ~txn ~mode)

(* Who stands between [txn] and this grant right now: incompatible holders
   plus every queued waiter (fresh requests queue FIFO behind them).
   Rendered at emission time as "id,id,..." because the immediate-grant
   fast path emits nothing, so lock state cannot be reconstructed offline. *)
let blockers_string e ~txn ~mode =
  let holders =
    List.filter_map
      (fun r ->
        if r.txn <> txn && not (compatible r.mode mode) then Some r.txn
        else None)
      e.granted
  in
  let queued =
    List.filter_map
      (fun w -> if w.w_txn <> txn then Some w.w_txn else None)
      e.waiters
  in
  List.sort_uniq compare (holders @ queued)
  |> List.map string_of_int |> String.concat ","

let lock_aux t ~txn name mode ~conditional ~instant =
  t.metrics.lock_calls <- t.metrics.lock_calls + 1;
  let e = entry t name in
  match find_request e txn with
  | Some r when covers r.mode mode -> Granted
  | prior ->
    let conversion = prior <> None in
    let prev_mode = Option.map (fun r -> r.mode) prior in
    let target =
      match prior with Some r -> join r.mode mode | None -> mode
    in
    (* After an instant-duration grant the lock state must return to what
       manual-duration requests established before. *)
    let settle_instant () =
      if instant then begin
        match (find_request e txn, prev_mode) with
        | Some r, Some pm -> r.mode <- pm
        | Some _, None ->
          drop_request t name e ~txn;
          pump t name e
        | None, _ -> ()
      end
    in
    let tr = Oib_sim.Sched.trace t.sched in
    (* instant-duration grants are invisible to the sanitizer: they are
       released before the requester proceeds, so they order nothing *)
    let probe_grant () =
      if (not instant) && Trace.probing tr then
        Trace.probe_emit tr
          (Oib_obs.Probe.Lock_acq
             { txn; target = name_string name; cond = conditional;
               table = (match name with Table _ -> true | Record _ -> false) })
    in
    let denied () =
      if Trace.tracing tr then
        Trace.emit tr
          (Event.Lock_denied
             { owner = txn; target = name_string name;
               mode = mode_string target;
               blockers = blockers_string e ~txn ~mode:target });
      Deadlock
    in
    if grantable e ~txn ~mode:target ~conversion then begin
      grant t name e ~txn ~mode:target;
      settle_instant ();
      probe_grant ();
      Trace.observe tr "lock_wait" 0;
      Granted
    end
    else if conditional then denied ()
    else if would_deadlock t ~txn name ~mode:target then denied ()
    else begin
      t.metrics.lock_waits <- t.metrics.lock_waits + 1;
      Hashtbl.replace t.waiting_on txn name;
      let t0 = Oib_sim.Sched.steps t.sched in
      if Trace.tracing tr then
        Trace.emit tr
          (Event.Lock_wait
             { owner = txn; target = name_string name;
               mode = mode_string target;
               blockers = blockers_string e ~txn ~mode:target });
      let span = Trace.span_begin tr ~cat:"lock" ~name:(name_string name) in
      Oib_sim.Sched.suspend t.sched (fun resume ->
          let w =
            { w_txn = txn; w_mode = target; w_resume = resume }
          in
          if conversion then e.waiters <- w :: e.waiters
          else e.waiters <- e.waiters @ [ w ]);
      (* granted by [pump] before we were resumed *)
      settle_instant ();
      probe_grant ();
      let waited = Oib_sim.Sched.steps t.sched - t0 in
      Trace.observe tr "lock_wait" waited;
      Oib_sim.Metrics.charge t.metrics (fun (r : Oib_obs.Resource.t) ->
          r.lock_wait_steps <- r.lock_wait_steps + waited);
      if Trace.tracing tr then
        Trace.emit tr
          (Event.Lock_acquired
             { owner = txn; target = name_string name;
               mode = mode_string target; waited });
      Trace.span_end tr span;
      Granted
    end

let lock t ~txn name mode =
  lock_aux t ~txn name mode ~conditional:false ~instant:false

let try_lock t ~txn name mode =
  match lock_aux t ~txn name mode ~conditional:true ~instant:false with
  | Granted -> true
  | Deadlock -> false

let instant_lock t ~txn name mode =
  lock_aux t ~txn name mode ~conditional:false ~instant:true

let try_instant_lock t ~txn name mode =
  match lock_aux t ~txn name mode ~conditional:true ~instant:true with
  | Granted -> true
  | Deadlock -> false

let unlock_all t ~txn =
  let names = Option.value ~default:[] (Hashtbl.find_opt t.held txn) in
  Hashtbl.remove t.held txn;
  let tr = Oib_sim.Sched.trace t.sched in
  if Trace.tracing tr && names <> [] then
    Trace.emit tr (Event.Lock_released_all { owner = txn });
  List.iter
    (fun name ->
      let e = entry t name in
      e.granted <- List.filter (fun r -> r.txn <> txn) e.granted;
      if Trace.probing tr then
        Trace.probe_emit tr
          (Oib_obs.Probe.Lock_rel
             { txn; target = name_string name;
               table = (match name with Table _ -> true | Record _ -> false) });
      pump t name e)
    (List.sort_uniq compare names)

let holds t ~txn name mode =
  match Hashtbl.find_opt t.entries name with
  | None -> false
  | Some e -> (
    match find_request e txn with
    | Some r -> covers r.mode mode
    | None -> false)

let holders t name =
  match Hashtbl.find_opt t.entries name with
  | None -> []
  | Some e -> List.map (fun r -> (r.txn, r.mode)) e.granted

let waiter_count t name =
  match Hashtbl.find_opt t.entries name with
  | None -> 0
  | Some e -> List.length e.waiters

let pp_mode ppf m = Format.pp_print_string ppf (mode_string m)

let pp_name ppf n = Format.pp_print_string ppf (name_string n)
