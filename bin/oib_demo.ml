(* oib-demo: drive the online index build engine from the command line.

   oib-demo build --alg sf --rows 5000 --workers 6 --txns 50
   oib-demo crash --alg nsf --rows 3000 --at 2000
   oib-demo soak  --seeds 25 --alg sf
   oib-demo iot   --rows 2000 *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver
module Metrics = Oib_sim.Metrics
module Trace = Oib_obs.Trace
module BS = Build_status

let alg_of_string = function
  | "nsf" -> Ib.Nsf
  | "sf" -> Ib.Sf
  | s -> failwith (Printf.sprintf "unknown algorithm %S (use nsf|sf)" s)

let fresh ?trace ?epoch_label ~seed ~rows () =
  let ctx = Engine.create ~seed ~page_capacity:1024 ?trace () in
  (* the marker must be stamped by THIS engine's clock (step 0), before
     populate, so multi-engine captures split into labelled epochs *)
  (match (trace, epoch_label) with
  | Some tr, Some label ->
    if Trace.tracing tr then
      Trace.emit tr (Oib_obs.Event.Epoch { label })
  | _ -> ());
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows ~seed in
  ctx

(* Shared --trace-jsonl plumbing: a trace with a flight recorder and a
   JSONL file sink. The closer must run before any [exit]. *)
let trace_setup jsonl =
  match jsonl with
  | None -> (None, fun () -> ())
  | Some path ->
    let trace = Trace.create () in
    ignore (Trace.attach_recorder trace ~capacity:2048);
    let close = Trace.add_jsonl_file_sink trace ~path in
    ( Some trace,
      fun () ->
        close ();
        Printf.printf "event trace written to %s\n" path )

let print_progress ctx =
  List.iter
    (fun (st : BS.t) ->
      Format.printf "%a@." BS.pp st;
      print_string "  phase timeline:";
      List.iter
        (fun (p, step) -> Printf.printf " %s@%d" (BS.phase_name p) step)
        (BS.history st);
      print_newline ())
    (Engine.build_progress ctx)

let report ctx (stats : Driver.stats ref) (d : Metrics.t) steps =
  Printf.printf "build steps            %8d\n" steps;
  Printf.printf "txns committed         %8d\n" (!stats).committed;
  Printf.printf "txns aborted           %8d\n" (!stats).aborted;
  Printf.printf "deadlock victims       %8d\n" (!stats).deadlocks;
  Printf.printf "log bytes (build)      %8d\n" d.log_bytes;
  Printf.printf "latch acquisitions     %8d\n" d.latch_acquires;
  Printf.printf "tree traversals        %8d\n" d.tree_traversals;
  Printf.printf "fast-path inserts      %8d\n" d.fast_path_inserts;
  Printf.printf "side-file entries      %8d\n" d.sidefile_appends;
  Printf.printf "duplicate rejections   %8d\n" d.keys_rejected_duplicate;
  let tree = (Catalog.index ctx.Ctx.catalog 10).tree in
  Printf.printf "index entries          %8d (%d tombstones)\n"
    (Oib_btree.Btree.entry_count tree)
    (Oib_btree.Btree.pseudo_count tree);
  Printf.printf "clustering             %8.3f\n" (Oib_btree.Bt_check.clustering tree);
  match Engine.consistency_errors ctx with
  | [] -> print_endline "consistency            OK"
  | errs ->
    List.iter print_endline errs;
    exit 1

(* Lifecycle display for a (possibly paused) build: catalog state, build
   phase, durable scan coverage. *)
let print_lifecycle ctx ~index_id =
  match Catalog.index ctx.Ctx.catalog index_id with
  | exception Invalid_argument _ ->
    Printf.printf "index %d: not in catalog\n" index_id
  | info ->
    let rs = Range_set.load ctx.Ctx.kv ~index_id in
    Printf.printf "index %d: state=%s phase=%s scanned=%s (%d pages sealed)\n"
      index_id
      (Catalog.state_name info.Catalog.state)
      (match info.Catalog.phase with
      | Catalog.Ready -> "ready"
      | Catalog.Nsf_building _ -> "nsf-building"
      | Catalog.Sf_building _ -> "sf-building")
      (if Range_set.is_empty rs then "-" else Range_set.to_string rs)
      (Range_set.covered_count rs)

let cmd_build alg rows workers txns unique seed jsonl profile profile_folded
    pause resume =
  let alg = alg_of_string alg in
  let trace = Trace.create () in
  ignore (Trace.attach_recorder trace ~capacity:2048);
  let close_jsonl =
    match jsonl with
    | Some path -> Trace.add_jsonl_file_sink trace ~path
    | None -> fun () -> ()
  in
  let ctx = fresh ~trace ~seed ~rows () in
  (* sample metrics + build progress into the dump (not the recorder-only
     case: samples would crowd real events out of the ring) *)
  if jsonl <> None then Obs_sampler.install ctx ~every:200;
  let prof =
    match profile with
    | Some every -> Some (fst (Obs_sampler.install_profiler ctx ~every ()))
    | None -> None
  in
  let stats =
    if workers > 0 then
      Driver.spawn_workers ctx
        { Driver.default with seed; workers; txns_per_worker = txns }
        ~table:1
    else
      ref { Driver.committed = 0; aborted = 0; deadlocks = 0; unique_violations = 0 }
  in
  let cfg =
    match pause with
    | None -> Ib.default_config alg
    | Some _ ->
      (* pause lands at the first durable checkpoint past the step, so
         checkpoint often enough for the demo to feel responsive *)
      { (Ib.default_config alg) with ckpt_every_pages = 16; ckpt_every_keys = 256 }
  in
  let paused = ref false in
  let pause_hook = ref None in
  (match pause with
  | None -> ()
  | Some at ->
    pause_hook :=
      Some
        (Sched.add_step_hook ctx.Ctx.sched (fun steps ->
             if steps >= at then Throttle.request_pause ctx.Ctx.throttle)));
  let steps = ref 0 and d = ref (Metrics.create ()) in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         let t0 = Sched.steps ctx.Ctx.sched in
         let before = Metrics.snapshot ctx.Ctx.metrics in
         (try
            Ib.build_index ctx cfg ~table:1
              { Ib.index_id = 10; key_cols = [ (if unique then 1 else 0) ]; unique }
          with Ib.Build_paused { index } ->
            paused := true;
            Printf.printf "index %d: pause honoured at a durable checkpoint\n"
              index);
         steps := Sched.steps ctx.Ctx.sched - t0;
         d := Metrics.diff ~after:(Metrics.snapshot ctx.Ctx.metrics) ~before));
  Sched.run ctx.Ctx.sched;
  if !paused then begin
    Printf.printf "build paused (virtual step %d):\n"
      (Sched.steps ctx.Ctx.sched);
    print_lifecycle ctx ~index_id:10;
    if resume then begin
      (match !pause_hook with
      | Some id -> Sched.remove_step_hook ctx.Ctx.sched id
      | None -> ());
      Throttle.clear_pause ctx.Ctx.throttle;
      print_endline "resuming from the committed ranges...";
      ignore
        (Sched.spawn ctx.Ctx.sched ~name:"ib-resume" (fun () ->
             let t0 = Sched.steps ctx.Ctx.sched in
             Ib.resume_builds ctx cfg;
             steps := !steps + (Sched.steps ctx.Ctx.sched - t0)));
      Sched.run ctx.Ctx.sched;
      print_lifecycle ctx ~index_id:10
    end
  end;
  if !paused && not resume then begin
    print_endline "build left paused; add --resume to continue it in place";
    close_jsonl ();
    match jsonl with
    | Some path -> Printf.printf "event trace written to %s\n" path
    | None -> ()
  end
  else begin
  print_progress ctx;
  print_endline "latency histograms (steps):";
  Format.printf "%a@." Trace.pp_hists trace;
  report ctx stats !d !steps;
  (match prof with
  | None -> ()
  | Some p ->
    Printf.printf "profiler: %d samples in %d rounds\n"
      (Oib_obs.Profiler.samples p)
      (Oib_obs.Profiler.ticks p);
    (match profile_folded with
    | None -> ()
    | Some path ->
      Out_channel.with_open_text path (fun oc ->
          output_string oc (Oib_obs.Profiler.folded p));
      Printf.printf "online folded stacks written to %s\n" path));
  close_jsonl ();
  match jsonl with
  | Some path -> Printf.printf "event trace written to %s\n" path
  | None -> ()
  end

let cmd_crash alg rows at seed jsonl =
  let alg = alg_of_string alg in
  let cfg =
    { (Ib.default_config alg) with ckpt_every_pages = 16; ckpt_every_keys = 256 }
  in
  let trace, finish_jsonl = trace_setup jsonl in
  let ctx = fresh ?trace ~epoch_label:"crash-run" ~seed ~rows () in
  let _ =
    Driver.spawn_workers ctx
      { Driver.default with seed; workers = 4; txns_per_worker = 100 }
      ~table:1
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.set_crash_trap ctx.Ctx.sched (fun steps -> steps >= at);
  (match Sched.run ctx.Ctx.sched with
  | () -> Printf.printf "build finished before step %d; no crash\n" at
  | exception Sched.Crashed -> Printf.printf "CRASH injected at step %d\n" at);
  let ctx = Engine.crash ctx in
  print_endline "restart recovery complete";
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"resume" (fun () ->
         Ib.resume_builds ctx cfg;
         match Catalog.index ctx.Ctx.catalog 10 with
         | _ -> ()
         | exception Invalid_argument _ ->
           Ib.build_index ctx cfg ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  (match (Catalog.index ctx.Ctx.catalog 10).phase with
  | Catalog.Ready -> print_endline "index READY after resume"
  | _ -> print_endline "index not ready?!");
  (match Engine.consistency_errors ctx with
  | [] -> print_endline "consistency            OK"
  | errs ->
    List.iter print_endline errs;
    finish_jsonl ();
    exit 1);
  finish_jsonl ()

let cmd_soak seeds alg jsonl =
  let alg = alg_of_string alg in
  let trace, finish_jsonl = trace_setup jsonl in
  let failures = ref 0 in
  for seed = 1 to seeds do
    let ctx =
      fresh ?trace
        ~epoch_label:(Printf.sprintf "seed-%d" seed)
        ~seed ~rows:300 ()
    in
    let _ =
      Driver.spawn_workers ctx
        { Driver.default with seed; workers = 3; txns_per_worker = 20 }
        ~table:1
    in
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
           Ib.build_index ctx (Ib.default_config alg) ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
    Sched.run ctx.Ctx.sched;
    match Engine.consistency_errors ctx with
    | [] -> Printf.printf "seed %3d: OK\n%!" seed
    | errs ->
      incr failures;
      Printf.printf "seed %3d: %d ERRORS\n%!" seed (List.length errs)
  done;
  Printf.printf "%d/%d seeds clean\n" (seeds - !failures) seeds;
  finish_jsonl ();
  if !failures > 0 then exit 1

let cmd_iot rows seed jsonl =
  let trace, finish_jsonl = trace_setup jsonl in
  let ctx = Engine.create ~seed ~page_capacity:1024 ?trace () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  (match
     Engine.run_txn ctx (fun txn ->
         for i = 0 to rows - 1 do
           ignore
             (Table_ops.insert ctx txn ~table:1
                (Oib_util.Record.make
                   [| Printf.sprintf "pk%06d" i; Printf.sprintf "s%04d" (i mod 89) |]))
         done)
   with
  | Ok () -> ()
  | Error _ -> failwith "populate failed");
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib-primary" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 1; key_cols = [ 0 ]; unique = true }));
  Sched.run ctx.Ctx.sched;
  print_endline "primary index built (unique)";
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib-secondary" (fun () ->
         Ib.build_secondary_via_primary ctx (Ib.default_config Ib.Sf) ~table:1
           ~primary:1
           { Ib.index_id = 2; key_cols = [ 1 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  print_endline "secondary built via key-order scan of the primary (§6.2)";
  (match Engine.consistency_errors ctx with
  | [] -> print_endline "consistency            OK"
  | errs ->
    List.iter print_endline errs;
    finish_jsonl ();
    exit 1);
  finish_jsonl ()

open Cmdliner

let alg_arg =
  Arg.(value & opt string "sf" & info [ "a"; "alg" ] ~docv:"ALG" ~doc:"nsf or sf")

let rows_arg =
  Arg.(value & opt int 2000 & info [ "rows" ] ~docv:"N" ~doc:"Initial table size")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Deterministic seed")

let jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:"Also write every trace event to $(docv) as JSON lines.")

let build_cmd =
  let workers = Arg.(value & opt int 4 & info [ "workers" ] ~docv:"W") in
  let txns = Arg.(value & opt int 50 & info [ "txns" ] ~docv:"T" ~doc:"Per worker") in
  let unique = Arg.(value & flag & info [ "unique" ]) in
  let profile =
    Arg.(
      value
      & opt (some int) None
      & info [ "profile" ] ~docv:"K"
          ~doc:
            "Sample every live fiber every $(docv) virtual steps, emitting \
             prof.sample events (analyze with oib-prof).")
  in
  let profile_folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "profile-folded" ] ~docv:"FILE"
          ~doc:
            "With --profile, also write the online profiler's folded \
             stacks to $(docv).")
  in
  let pause =
    Arg.(
      value
      & opt (some int) None
      & info [ "pause" ] ~docv:"STEP"
          ~doc:
            "Request a cooperative pause once the virtual clock reaches \
             $(docv); the builder stops at its next durable checkpoint, \
             losing no work.")
  in
  let resume =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "With --pause: after the build pauses, continue it in place \
             from the committed ranges and finish.")
  in
  Cmd.v
    (Cmd.info "build" ~doc:"Build an index online under a transaction mix")
    Term.(
      const cmd_build $ alg_arg $ rows_arg $ workers $ txns $ unique $ seed_arg
      $ jsonl_arg $ profile $ profile_folded $ pause $ resume)

let crash_cmd =
  let at = Arg.(value & opt int 2000 & info [ "at" ] ~docv:"STEP" ~doc:"Crash step") in
  Cmd.v
    (Cmd.info "crash" ~doc:"Crash mid-build, recover, resume, verify")
    Term.(const cmd_crash $ alg_arg $ rows_arg $ at $ seed_arg $ jsonl_arg)

let soak_cmd =
  let seeds = Arg.(value & opt int 20 & info [ "seeds" ] ~docv:"N") in
  Cmd.v
    (Cmd.info "soak" ~doc:"Run the oracle across many seeds")
    Term.(const cmd_soak $ seeds $ alg_arg $ jsonl_arg)

let iot_cmd =
  Cmd.v
    (Cmd.info "iot" ~doc:"Secondary index via a primary-key-order scan (§6.2)")
    Term.(const cmd_iot $ rows_arg $ seed_arg $ jsonl_arg)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "oib-demo" ~version:"1.0"
             ~doc:"Online index build without quiescing updates (SIGMOD '92)")
          [ build_cmd; crash_cmd; soak_cmd; iot_cmd ]))
