(* oib-lint: concurrency-protocol linter for the online-index-build tree.

   Parses every .ml under --root with compiler-libs (parsetree only),
   builds a whole-tree call graph, solves the interprocedural
   latch-effect and may-yield fixpoints, and enforces the
   latch/WAL/logging/lifecycle/interference discipline rules L1..L12
   described in DESIGN.md §12, §17 and §18.
   Exit status: 0 clean, 1 unsuppressed diagnostics. *)

open Cmdliner

module L = Oib_lint.Lint

let print_stats (st : L.stats) =
  let line fmt = Printf.printf fmt in
  line "files scanned       %d\n" st.L.st_files;
  line "functions analysed  %d\n" st.L.st_units;
  let table title rows =
    line "%s\n" title;
    if rows = [] then line "  (none)\n"
    else
      List.iter (fun (r, n) -> line "  %-6s %d\n" r n) rows
  in
  table "diagnostics by rule:" st.L.st_by_rule;
  table "suppressed by rule:" st.L.st_suppressed_by_rule;
  if st.L.st_suppressions <> [] then begin
    line "suppressions:\n";
    List.iter
      (fun (f, r, why) -> line "  %-4s %s: %s\n" r f why)
      st.L.st_suppressions
  end;
  if st.L.st_baselined > 0 then
    line "baselined findings  %d (grandfathered by --baseline)\n"
      st.L.st_baselined;
  line "phase wall time (ms):\n";
  List.iter (fun (k, v) -> line "  %-10s %.2f\n" k v) st.L.st_phase_ms;
  line "rule wall time (ms):\n";
  List.iter (fun (k, v) -> line "  %-10s %.2f\n" k v) st.L.st_rule_ms

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The static L5 latch-order graph, for the sanitizer's
   static-vs-runtime diff (oib_fuzz --lint-graph). *)
let graph_json (edges : (string * string) list) =
  "{\"edges\":["
  ^ String.concat ","
      (List.map
         (fun (a, b) ->
           "{\"from\":\"" ^ json_escape a ^ "\",\"to\":\"" ^ json_escape b
           ^ "\"}")
         edges)
  ^ "]}"

let print_diag ~explain d =
  print_endline (Oib_lint.Diag.to_string d);
  if explain then
    List.iter
      (fun frame -> print_endline ("    via " ^ frame))
      d.Oib_lint.Diag.trace

let trajectory_record (res : L.result) =
  let st = res.L.r_stats in
  let total l = List.fold_left (fun a (_, n) -> a + n) 0 l in
  let ms = List.fold_left (fun a (_, v) -> a +. v) 0. st.L.st_phase_ms in
  let rules =
    String.concat ","
      (List.sort_uniq compare
         (List.map fst (st.L.st_by_rule @ st.L.st_suppressed_by_rule)))
  in
  let rule_ms name =
    Option.value ~default:0. (List.assoc_opt name st.L.st_rule_ms)
  in
  (* alphabetical keys, schema bench-trajectory/v1 *)
  Printf.sprintf
    "{\"analysis_ms\":%.3f,\"files\":%d,\"findings\":%d,\"kind\":\"lint_engine\",\"l10_ms\":%.3f,\"l11_ms\":%.3f,\"l12_ms\":%.3f,\"rules\":\"%s\",\"schema\":\"bench-trajectory/v1\",\"units\":%d}"
    ms st.L.st_files
    (total st.L.st_by_rule + total st.L.st_suppressed_by_rule)
    (rule_ms "L10") (rule_ms "L11") (rule_ms "L12") (json_escape rules)
    st.L.st_units

let run root stats json show_suppressed unused_allows strict emit_graph
    graph explain trajectory baseline write_baseline emit_atomics =
  if not (Sys.file_exists root && Sys.is_directory root) then begin
    prerr_endline ("oib-lint: no such directory: " ^ root);
    2
  end
  else begin
    let options = { L.default_options with L.root } in
    let res = L.run_tree ~options root in
    let res =
      match baseline with
      | Some path -> (
        match L.read_baseline path with
        | keys -> L.apply_baseline keys res
        | exception Sys_error e | exception Failure e ->
          prerr_endline ("oib-lint: --baseline: " ^ e);
          exit 2)
      | None -> res
    in
    (match write_baseline with
    | Some path -> L.write_baseline path res
    | None -> ());
    let errs = L.errors res in
    let shown = if show_suppressed then res.L.r_diags else errs in
    List.iter (print_diag ~explain) shown;
    if unused_allows || strict then
      List.iter (print_diag ~explain:false) res.L.r_unused_allows;
    (match json with
    | Some path ->
      let oc = open_out path in
      output_string oc (L.stats_to_json res.L.r_stats);
      output_string oc "\n";
      close_out oc
    | None -> ());
    (match emit_graph with
    | Some path ->
      let oc = open_out path in
      output_string oc (graph_json res.L.r_rules.Oib_lint.Rules.order_edges);
      output_string oc "\n";
      close_out oc
    | None -> ());
    (match graph with
    | Some path ->
      let oc = open_out path in
      output_string oc (Oib_lint.Callgraph.to_json res.L.r_graph);
      close_out oc
    | None -> ());
    (match emit_atomics with
    | Some path ->
      let oc = open_out path in
      output_string oc
        (Oib_lint.Atomics.to_json res.L.r_rules.Oib_lint.Rules.atomics);
      close_out oc
    | None -> ());
    (match trajectory with
    | Some path ->
      let oc =
        open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
      in
      output_string oc (trajectory_record res);
      output_string oc "\n";
      close_out oc
    | None -> ());
    if stats then print_stats res.L.r_stats;
    if errs <> [] then 1
    else if strict && res.L.r_unused_allows <> [] then 1
    else 0
  end

let root =
  let doc = "Directory tree to lint." in
  Arg.(value & opt string "lib" & info [ "root" ] ~docv:"DIR" ~doc)

let stats =
  let doc = "Print rule hit counts and the suppression table." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let json =
  let doc = "Write statistics as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let show_suppressed =
  let doc = "Also print diagnostics silenced by [@lint.allow]." in
  Arg.(value & flag & info [ "show-suppressed" ] ~doc)

let unused_allows =
  let doc =
    "Report [@lint.allow] annotations that suppressed zero diagnostics."
  in
  Arg.(value & flag & info [ "unused-allows" ] ~doc)

let strict =
  let doc =
    "Fail (exit 1) when any [@lint.allow] annotation is unused; implies \
     $(b,--unused-allows)."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let emit_graph =
  let doc =
    "Write the static L5 latch-order graph as JSON to $(docv), for the \
     sanitizer's static-vs-runtime diff (oib_fuzz --lint-graph)."
  in
  Arg.(
    value & opt (some string) None & info [ "emit-graph" ] ~docv:"FILE" ~doc)

let graph =
  let doc =
    "Write the full interprocedural call graph (nodes with converged \
     latch effects, resolved edges) as JSON to $(docv)."
  in
  Arg.(value & opt (some string) None & info [ "graph" ] ~docv:"FILE" ~doc)

let explain =
  let doc =
    "Under each finding, print the interprocedural path (call frames / \
     witness chain) that produced it."
  in
  Arg.(value & flag & info [ "explain" ] ~doc)

let trajectory =
  let doc =
    "Append a $(b,kind:lint_engine) record (bench-trajectory/v1) to \
     $(docv)."
  in
  Arg.(
    value & opt (some string) None & info [ "trajectory" ] ~docv:"FILE" ~doc)

let baseline =
  let doc =
    "Grandfather findings listed in the $(docv) snapshot (created with \
     $(b,--write-baseline)): matching findings are reported as baselined, \
     counted separately in --stats, and do not fail the run."
  in
  Arg.(
    value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let write_baseline =
  let doc =
    "Snapshot the current unsuppressed findings to $(docv) \
     (oib-lint-baseline/v1, one rule|file|site|msg key per line)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "write-baseline" ] ~docv:"FILE" ~doc)

let emit_atomics =
  let doc =
    "Write the L12 atomic-section table (per-function yield-free regions \
     and the crossing/atomic shared-state classification) as JSON to \
     $(docv), for the sanitizer's static-vs-dynamic diff \
     (oib_fuzz --atomics)."
  in
  Arg.(
    value
    & opt (some string) None
    & info [ "emit-atomics" ] ~docv:"FILE" ~doc)

let cmd =
  let doc =
    "latch/WAL/logging/lifecycle/interference protocol linter for the oib \
     tree"
  in
  let info = Cmd.info "oib-lint" ~doc in
  Cmd.v info
    Term.(
      const run $ root $ stats $ json $ show_suppressed $ unused_allows
      $ strict $ emit_graph $ graph $ explain $ trajectory $ baseline
      $ write_baseline $ emit_atomics)

let () = exit (Cmd.eval' cmd)
