(* oib-lint: concurrency-protocol linter for the online-index-build tree.

   Parses every .ml under --root with compiler-libs (parsetree only) and
   enforces the latch/WAL/logging discipline rules L1..L6 described in
   DESIGN.md §12. Exit status: 0 clean, 1 unsuppressed diagnostics. *)

open Cmdliner

module L = Oib_lint.Lint

let print_stats (st : L.stats) =
  let line fmt = Printf.printf fmt in
  line "files scanned       %d\n" st.L.st_files;
  line "functions analysed  %d\n" st.L.st_units;
  let table title rows =
    line "%s\n" title;
    if rows = [] then line "  (none)\n"
    else
      List.iter (fun (r, n) -> line "  %-6s %d\n" r n) rows
  in
  table "diagnostics by rule:" st.L.st_by_rule;
  table "suppressed by rule:" st.L.st_suppressed_by_rule;
  if st.L.st_suppressions <> [] then begin
    line "suppressions:\n";
    List.iter
      (fun (f, r, why) -> line "  %-4s %s: %s\n" r f why)
      st.L.st_suppressions
  end

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* The static L5 latch-order graph, for the sanitizer's
   static-vs-runtime diff (oib_fuzz --lint-graph). *)
let graph_json (edges : (string * string) list) =
  "{\"edges\":["
  ^ String.concat ","
      (List.map
         (fun (a, b) ->
           "{\"from\":\"" ^ json_escape a ^ "\",\"to\":\"" ^ json_escape b
           ^ "\"}")
         edges)
  ^ "]}"

let run root stats json show_suppressed unused_allows strict emit_graph =
  if not (Sys.file_exists root && Sys.is_directory root) then begin
    prerr_endline ("oib-lint: no such directory: " ^ root);
    2
  end
  else begin
    let options = { L.default_options with L.root } in
    let res = L.run_tree ~options root in
    let errs = L.errors res in
    let shown = if show_suppressed then res.L.r_diags else errs in
    List.iter (fun d -> print_endline (Oib_lint.Diag.to_string d)) shown;
    if unused_allows || strict then
      List.iter
        (fun d -> print_endline (Oib_lint.Diag.to_string d))
        res.L.r_unused_allows;
    (match json with
    | Some path ->
      let oc = open_out path in
      output_string oc (L.stats_to_json res.L.r_stats);
      output_string oc "\n";
      close_out oc
    | None -> ());
    (match emit_graph with
    | Some path ->
      let oc = open_out path in
      output_string oc (graph_json res.L.r_rules.Oib_lint.Rules.order_edges);
      output_string oc "\n";
      close_out oc
    | None -> ());
    if stats then print_stats res.L.r_stats;
    if errs <> [] then 1
    else if strict && res.L.r_unused_allows <> [] then 1
    else 0
  end

let root =
  let doc = "Directory tree to lint." in
  Arg.(value & opt string "lib" & info [ "root" ] ~docv:"DIR" ~doc)

let stats =
  let doc = "Print rule hit counts and the suppression table." in
  Arg.(value & flag & info [ "stats" ] ~doc)

let json =
  let doc = "Write statistics as JSON to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let show_suppressed =
  let doc = "Also print diagnostics silenced by [@lint.allow]." in
  Arg.(value & flag & info [ "show-suppressed" ] ~doc)

let unused_allows =
  let doc =
    "Report [@lint.allow] annotations that suppressed zero diagnostics."
  in
  Arg.(value & flag & info [ "unused-allows" ] ~doc)

let strict =
  let doc =
    "Fail (exit 1) when any [@lint.allow] annotation is unused; implies \
     $(b,--unused-allows)."
  in
  Arg.(value & flag & info [ "strict" ] ~doc)

let emit_graph =
  let doc =
    "Write the static L5 latch-order graph as JSON to $(docv), for the \
     sanitizer's static-vs-runtime diff (oib_fuzz --lint-graph)."
  in
  Arg.(
    value & opt (some string) None & info [ "emit-graph" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "latch/WAL/logging protocol linter for the oib tree" in
  let info = Cmd.info "oib-lint" ~doc in
  Cmd.v info
    Term.(
      const run $ root $ stats $ json $ show_suppressed $ unused_allows
      $ strict $ emit_graph)

let () = exit (Cmd.eval' cmd)
