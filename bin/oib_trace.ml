(* oib-trace: offline analyzer for JSONL trace dumps.

   oib-demo build --trace-jsonl build.jsonl
   oib-trace summary    build.jsonl
   oib-trace spans      build.jsonl
   oib-trace contention build.jsonl
   oib-trace timeline   build.jsonl
   oib-trace check      build.jsonl   # exit 1 on any invariant violation *)

module TR = Oib_obs_analysis.Trace_reader
module Check = Oib_obs_analysis.Check
module Report = Oib_obs_analysis.Report

let load path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "oib-trace: no such file: %s\n" path;
    exit 2
  end;
  let events, errors = TR.of_file path in
  List.iter
    (fun (e : TR.error) ->
      Printf.eprintf "oib-trace: %s:%d: %s\n" path e.line_no e.msg)
    errors;
  (events, errors)

(* shared --epoch N: restrict any subcommand to one engine incarnation *)
let select_epoch epoch path events =
  match epoch with
  | None -> events
  | Some n -> (
    match TR.nth_epoch events n with
    | Some es -> es
    | None ->
      Printf.eprintf "oib-trace: %s has %d epoch(s); no epoch %d\n" path
        (List.length (TR.epochs events))
        n;
      exit 2)

let run_report render epoch path =
  let events, _errors = load path in
  print_string (render (select_epoch epoch path events))

let cmd_summary epoch path = run_report Report.summary epoch path

let cmd_quantiles window every epoch path =
  run_report (Oib_obs_analysis.Quantiles.report ?window ?every) epoch path
let cmd_spans epoch path = run_report Report.spans epoch path
let cmd_contention epoch path = run_report Report.contention epoch path
let cmd_timeline epoch path = run_report Report.timeline epoch path

let cmd_check epoch path =
  let events, errors = load path in
  let events = select_epoch epoch path events in
  let violations = Check.run events in
  List.iter
    (fun v -> Format.printf "%a@." Check.pp_violation v)
    violations;
  let epochs = List.length (TR.epochs events) in
  Printf.printf "%d events, %d epochs, %d undecodable lines, %d violations\n"
    (List.length events) epochs (List.length errors)
    (List.length violations);
  if violations <> [] || errors <> [] then exit 1

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"JSONL trace dump (from --trace-jsonl)")

let epoch_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch" ] ~docv:"N"
        ~doc:
          "Restrict to the $(docv)-th (0-based) engine incarnation of a \
           multi-crash capture.")

let make name doc f =
  Cmd.v (Cmd.info name ~doc) Term.(const f $ epoch_arg $ file_arg)

let quantiles_cmd =
  let window =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ] ~docv:"STEPS"
          ~doc:"Sliding-window width in virtual steps (default: 4x the \
                reporting period).")
  in
  let every =
    Arg.(
      value
      & opt (some int) None
      & info [ "every" ] ~docv:"STEPS"
          ~doc:"Reporting period in virtual steps (default: ~1/16 of the \
                epoch span).")
  in
  Cmd.v
    (Cmd.info "quantiles"
       ~doc:
         "Sliding-window latency/wait percentiles (p50/p95/p99) per epoch")
    Term.(const cmd_quantiles $ window $ every $ epoch_arg $ file_arg)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "oib-trace" ~version:"1.0"
             ~doc:"Analyze JSONL trace dumps from the online index build engine")
          [
            make "summary" "Event counts and transaction outcomes per epoch"
              cmd_summary;
            make "spans"
              "Span totals by category and per-transaction critical-path \
               breakdowns"
              cmd_spans;
            make "contention"
              "Per-target wait totals and blocker attribution (IB vs updater)"
              cmd_contention;
            make "timeline"
              "Chronological waits, build phases, crashes and recovery steps"
              cmd_timeline;
            quantiles_cmd;
            make "check" "Validate trace invariants; exit 1 on any violation"
              cmd_check;
          ]))
