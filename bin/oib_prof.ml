(* oib-prof: offline profile analyzer for JSONL trace dumps carrying
   Prof_sample events (oib-demo build --profile K --trace-jsonl FILE).

   oib-prof summary build.jsonl            # totals + wait-state mix
   oib-prof folded  build.jsonl > out.folded   # flamegraph.pl input
   oib-prof top     build.jsonl [--bottom-up]
   oib-prof waits   build.jsonl            # per phase / txn class / edge
   oib-prof diff    a.jsonl b.jsonl        # signed per-path deltas

   Every subcommand takes --epoch N to target one incarnation of a
   multi-crash capture. *)

module TR = Oib_obs_analysis.Trace_reader
module Profile = Oib_obs_analysis.Profile

let load path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "oib-prof: no such file: %s\n" path;
    exit 2
  end;
  let events, errors = TR.of_file path in
  List.iter
    (fun (e : TR.error) ->
      Printf.eprintf "oib-prof: %s:%d: %s\n" path e.line_no e.msg)
    errors;
  events

let select_epoch epoch path events =
  match epoch with
  | None -> events
  | Some n -> (
    match TR.nth_epoch events n with
    | Some es -> es
    | None ->
      Printf.eprintf "oib-prof: %s has %d epoch(s); no epoch %d\n" path
        (List.length (TR.epochs events))
        n;
      exit 2)

let load_epoch epoch path = select_epoch epoch path (load path)

let cmd_summary epoch path =
  let events = load_epoch epoch path in
  let total = Profile.total_weight events in
  Printf.printf "%d samples over %d events\n" total (List.length events);
  if total = 0 then begin
    prerr_endline
      "oib-prof: no Prof_sample events (capture with --profile K)";
    exit 1
  end;
  print_endline "state breakdown:";
  List.iter
    (fun (state, w) ->
      Printf.printf "  %-9s %7d  %5.1f%%\n" state w
        (100.0 *. float_of_int w /. float_of_int total))
    (Profile.by_state events);
  print_endline "samples per fiber class:";
  List.iter
    (fun (fname, w) -> Printf.printf "  %-12s %7d\n" fname w)
    (Profile.by_fiber events);
  print_endline "hottest stacks:";
  let top =
    Profile.weights events
    |> List.sort (fun (pa, wa) (pb, wb) ->
           if wa <> wb then compare wb wa else String.compare pa pb)
  in
  List.iteri
    (fun i (path, w) -> if i < 5 then Printf.printf "  %6d  %s\n" w path)
    top

let cmd_folded epoch path =
  print_string (Profile.folded (load_epoch epoch path))

let cmd_top epoch bottom_up limit path =
  let events = load_epoch epoch path in
  if bottom_up then begin
    Printf.printf "%7s %7s  %s\n" "self" "total" "frame";
    List.iteri
      (fun i (frame, total, self) ->
        if i < limit then Printf.printf "%7d %7d  %s\n" self total frame)
      (Profile.bottom_up events)
  end
  else begin
    Printf.printf "%7s %7s  %s\n" "total" "self" "path";
    List.iteri
      (fun i (path, total, self) ->
        if i < limit then Printf.printf "%7d %7d  %s\n" total self path)
      (Profile.top_down events)
  end

let cmd_waits epoch path =
  let events = load_epoch epoch path in
  print_endline "waits by build phase:";
  List.iter
    (fun (index, phase, state, w) ->
      Printf.printf "  index %-3d %-9s %-9s %6d\n" index phase state w)
    (Profile.waits_by_phase events);
  print_endline "waits by txn class:";
  List.iter
    (fun (fname, state, w) ->
      Printf.printf "  %-12s %-9s %6d\n" fname state w)
    (Profile.waits_by_class events);
  print_endline "blocker attribution (state, resource, blocker):";
  List.iter
    (fun (state, resource, blocker, w) ->
      Printf.printf "  %-9s %-16s %-12s %6d\n" state resource blocker w)
    (Profile.wait_edges events)

let cmd_diff epoch expect_empty expect_delta path_a path_b =
  let a = load_epoch epoch path_a and b = load_epoch epoch path_b in
  let deltas = Profile.diff a b in
  List.iter
    (fun (path, d) -> Printf.printf "%+7d  %s\n" d path)
    deltas;
  Printf.printf "%d path(s) differ (A=%d samples, B=%d samples)\n"
    (List.length deltas) (Profile.total_weight a) (Profile.total_weight b);
  if expect_empty && deltas <> [] then begin
    prerr_endline "oib-prof: diff expected to be empty but is not";
    exit 1
  end;
  if expect_delta && deltas = [] then begin
    prerr_endline "oib-prof: diff expected to report a delta but is empty";
    exit 1
  end

open Cmdliner

let epoch_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "epoch" ] ~docv:"N"
        ~doc:
          "Restrict to the $(docv)-th (0-based) engine incarnation of a \
           multi-crash capture.")

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"JSONL trace dump (from --trace-jsonl)")

let summary_cmd =
  Cmd.v
    (Cmd.info "summary"
       ~doc:"Sample totals, wait-state mix, hottest stacks; exit 1 if empty")
    Term.(const cmd_summary $ epoch_arg $ file_arg)

let folded_cmd =
  Cmd.v
    (Cmd.info "folded"
       ~doc:"Folded stacks (one `frames weight' line each), flamegraph-ready")
    Term.(const cmd_folded $ epoch_arg $ file_arg)

let top_cmd =
  let bottom_up =
    Arg.(
      value & flag
      & info [ "bottom-up" ]
          ~doc:"Aggregate by leaf frame instead of by stack prefix.")
  in
  let limit =
    Arg.(value & opt int 40 & info [ "limit" ] ~docv:"N" ~doc:"Rows to print.")
  in
  Cmd.v
    (Cmd.info "top" ~doc:"Top-down (or bottom-up) self/total step table")
    Term.(const cmd_top $ epoch_arg $ bottom_up $ limit $ file_arg)

let waits_cmd =
  Cmd.v
    (Cmd.info "waits"
       ~doc:
         "Wait-state breakdown per build phase and per txn class, plus \
          blocker attribution edges")
    Term.(const cmd_waits $ epoch_arg $ file_arg)

let diff_cmd =
  let file_b =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"FILE_B" ~doc:"Second capture (the candidate).")
  in
  let expect_empty =
    Arg.(
      value & flag
      & info [ "expect-empty" ]
          ~doc:"Exit 1 unless the diff is empty (CI self-check).")
  in
  let expect_delta =
    Arg.(
      value & flag
      & info [ "expect-delta" ]
          ~doc:"Exit 1 unless at least one path differs (CI self-check).")
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Signed per-path sample deltas B-A, largest magnitude first \
          (positive = B spends more there)")
    Term.(
      const cmd_diff $ epoch_arg $ expect_empty $ expect_delta $ file_arg
      $ file_b)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "oib-prof" ~version:"1.0"
             ~doc:
               "Analyze deterministic virtual-time profiles captured in \
                JSONL trace dumps")
          [ summary_cmd; folded_cmd; top_cmd; waits_cmd; diff_cmd ]))
