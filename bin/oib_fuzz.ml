(* oib-fuzz: deterministic simulation testing for the online index builder.

   oib-fuzz run   --seed 7                      one generated scenario
   oib-fuzz fuzz  --count 40                    many seeds, generated fault plans
   oib-fuzz sweep --alg nsf --scenarios 2       crash at every k-th step
   oib-fuzz repro --seed 7 --alg sf ...         replay a shrunk failure

   Every failure is shrunk to a minimal scenario and reported as a one-line
   `oib-fuzz repro ...` command, with the flight-recorder dump of the
   minimal failing run. Nonzero exit on any oracle violation. *)

open Oib_dst
module Trace = Oib_obs.Trace
module Ctx = Oib_core.Ctx
module Catalog = Oib_core.Catalog

(* Test-only oracle sabotage: plant a phantom entry in the index behind the
   WAL's back, right before the final battery. The consistency oracle must
   flag it, and the shrinker must carry the failure down to a minimal
   scenario — this is how the harness proves it can catch real bugs. *)
let sabotage_hook (ctx : Ctx.t) =
  match Catalog.index ctx.Ctx.catalog 10 with
  | info ->
    ignore
      (Oib_btree.Btree.set_state info.Catalog.tree
         (Oib_util.Ikey.make "zzz-sabotage"
            (Oib_util.Rid.make ~page:999_983 ~slot:0))
         Oib_wal.Log_record.Present)
  | exception Invalid_argument _ -> ()

let inject_of sabotage = if sabotage then Some sabotage_hook else None

let print_outcome (o : Runner.outcome) =
  Printf.printf
    "incarnations=%d steps=%d committed=%d%s oracle=%s\n"
    o.Runner.incarnations o.Runner.total_steps o.Runner.committed
    (if o.Runner.build_cancelled then " build-cancelled" else "")
    (if Runner.failed o then "FAIL" else "ok")

(* Shrink the failure, dump the minimal run's flight recorder, print the
   repro line. Never returns a passing status: caller exits 1 after. *)
let report_failure ~sabotage (o : Runner.outcome) =
  let inject = inject_of sabotage in
  Printf.printf "ORACLE VIOLATION at %s:\n"
    (Option.value o.Runner.failed_at ~default:"?");
  List.iter (fun e -> Printf.printf "  %s\n" e) o.Runner.errors;
  print_endline "shrinking...";
  let reproduces c = Runner.failed (Runner.run ?inject c) in
  let small, runs = Shrink.shrink ~reproduces o.Runner.scenario in
  Format.printf "minimal after %d runs: %a@." runs Scenario.pp small;
  let errs = (Runner.run ?inject small).Runner.errors in
  List.iter (fun e -> Printf.printf "  %s\n" e) errs;
  (* flight-recorder dump of the minimal failing run *)
  let tr = Trace.create () in
  ignore (Trace.attach_recorder tr ~capacity:256);
  Trace.set_on_dump tr (fun s ->
      print_string s;
      print_newline ());
  ignore (Runner.run ~trace:tr ?inject small);
  Trace.failure tr ~reason:"oib-fuzz oracle violation (minimal scenario)";
  Printf.printf "repro: %s\n%!" (Scenario.repro_command ~sabotage small)

let exec ~sabotage ~jsonl sc =
  Format.printf "%a@." Scenario.pp sc;
  let trace, close =
    match jsonl with
    | None -> (None, fun () -> ())
    | Some path ->
      let tr = Trace.create () in
      ignore (Trace.attach_recorder tr ~capacity:2048);
      let close = Trace.add_jsonl_file_sink tr ~path in
      ( Some tr,
        fun () ->
          close ();
          Printf.printf "event trace written to %s\n" path )
  in
  let o = Runner.run ?trace ?inject:(inject_of sabotage) sc in
  print_outcome o;
  close ();
  if Runner.failed o then begin
    report_failure ~sabotage o;
    exit 1
  end

let cmd_run seed alg rows workers txns sabotage jsonl =
  let sc =
    Scenario.generate ~seed
    |> Scenario.override
         ?alg:(Option.map Scenario.alg_of_string alg)
         ?rows ?workers ?txns
  in
  exec ~sabotage ~jsonl sc

let cmd_repro seed alg rows unique workers txns ops post faults sabotage jsonl =
  let sc =
    Scenario.generate ~seed
    |> Scenario.override
         ?alg:(Option.map Scenario.alg_of_string alg)
         ?rows ~unique ?workers ?txns ?ops ?post
         ?faults:(Option.map Scenario.faults_of_string faults)
  in
  exec ~sabotage ~jsonl sc

let cmd_fuzz count seed_base alg sabotage =
  let alg = Option.map Scenario.alg_of_string alg in
  let inject = inject_of sabotage in
  for seed = seed_base to seed_base + count - 1 do
    let sc = Scenario.generate ~seed |> Scenario.override ?alg in
    let o = Runner.run ?inject sc in
    Format.printf "seed %4d: %a@." seed Scenario.pp sc;
    Printf.printf "          ";
    print_outcome o;
    if Runner.failed o then begin
      report_failure ~sabotage o;
      exit 1
    end
  done;
  Printf.printf "%d scenarios clean\n" count

let cmd_sweep alg scenarios seed_base points sabotage =
  let alg = Scenario.alg_of_string alg in
  let total = ref 0 in
  for i = 0 to scenarios - 1 do
    let seed = seed_base + i in
    let sc = Scenario.generate ~seed |> Scenario.override ~alg in
    Format.printf "%a@." Scenario.pp sc;
    let r = Sweep.sweep ?inject:(inject_of sabotage) sc ~points in
    if r.Sweep.base_errors <> [] then begin
      Printf.printf "fault-free base run FAILS:\n";
      report_failure ~sabotage
        (Runner.run
           ?inject:(inject_of sabotage)
           (Scenario.override ~faults:[] sc));
      exit 1
    end;
    total := !total + 1 + List.length r.Sweep.points;
    Printf.printf "  base %d steps, %d crash points: " r.Sweep.base_steps
      (List.length r.Sweep.points);
    (match Sweep.failures r with
    | [] -> Printf.printf "all clean\n%!"
    | p :: _ ->
      Printf.printf "FAIL at step %d\n" p.Sweep.crash_step;
      report_failure ~sabotage
        (Runner.run
           ?inject:(inject_of sabotage)
           (Scenario.override ~faults:[ Scenario.Crash_at p.Sweep.crash_step ]
              sc));
      exit 1)
  done;
  Printf.printf "%d scenario/crash-point combinations clean\n" !total

open Cmdliner

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Scenario seed")

let alg_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "a"; "alg" ] ~docv:"ALG" ~doc:"Force nsf, sf or iot")

let rows_opt =
  Arg.(value & opt (some int) None & info [ "rows" ] ~docv:"N")

let workers_opt =
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"W")

let txns_opt =
  Arg.(value & opt (some int) None & info [ "txns" ] ~docv:"T" ~doc:"Per worker")

let sabotage_arg =
  Arg.(
    value & flag
    & info [ "sabotage" ]
        ~doc:"Test-only: corrupt the index before the final oracle battery")

let jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:"Write every trace event to $(docv) as JSON lines.")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run one generated scenario and its oracle battery")
    Term.(
      const cmd_run $ seed_arg $ alg_opt $ rows_opt $ workers_opt $ txns_opt
      $ sabotage_arg $ jsonl_arg)

let repro_cmd =
  let ops = Arg.(value & opt (some int) None & info [ "ops" ] ~docv:"N") in
  let post =
    Arg.(value & opt (some int) None & info [ "post-txns" ] ~docv:"N")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:"Comma-separated kind@step list (crash,media,ckpt,trunc,backup) or 'none'")
  in
  let unique = Arg.(value & flag & info [ "unique" ]) in
  Cmd.v
    (Cmd.info "repro" ~doc:"Replay a (shrunk) scenario from its repro line")
    Term.(
      const cmd_repro $ seed_arg $ alg_opt $ rows_opt $ unique $ workers_opt
      $ txns_opt $ ops $ post $ faults $ sabotage_arg $ jsonl_arg)

let fuzz_cmd =
  let count =
    Arg.(value & opt int 25 & info [ "count" ] ~docv:"N" ~doc:"Scenarios to run")
  in
  let base =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~docv:"SEED" ~doc:"First seed")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Generated scenarios with generated fault plans, shrink failures")
    Term.(const cmd_fuzz $ count $ base $ alg_opt $ sabotage_arg)

let sweep_cmd =
  let alg =
    Arg.(value & opt string "nsf" & info [ "a"; "alg" ] ~docv:"ALG")
  in
  let scenarios =
    Arg.(value & opt int 2 & info [ "scenarios" ] ~docv:"N" ~doc:"Seeds to sweep")
  in
  let base =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~docv:"SEED" ~doc:"First seed")
  in
  let points =
    Arg.(
      value & opt int 55
      & info [ "points" ] ~docv:"K" ~doc:"Crash points per scenario")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Re-run a scenario crashing at every k-th scheduler step")
    Term.(const cmd_sweep $ alg $ scenarios $ base $ points $ sabotage_arg)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "oib-fuzz" ~version:"1.0"
             ~doc:
               "Deterministic simulation tests: scenario fuzzing, crash-point \
                sweeps, failure shrinking")
          [ run_cmd; fuzz_cmd; sweep_cmd; repro_cmd ]))
