(* oib-fuzz: deterministic simulation testing for the online index builder.

   oib-fuzz run   --seed 7                      one generated scenario
   oib-fuzz fuzz  --count 40                    many seeds, generated fault plans
   oib-fuzz sweep --alg nsf --scenarios 2       crash at every k-th step
   oib-fuzz repro --seed 7 --alg sf ...         replay a shrunk failure

   Every failure is shrunk to a minimal scenario and reported as a one-line
   `oib-fuzz repro ...` command, with the flight-recorder dump of the
   minimal failing run. Nonzero exit on any oracle violation.

   With --sanitize every run also streams its probe events through oib-san
   (lockset race detection, latch-order cycle prediction, WAL runtime
   verification); any sanitizer finding fails the command exactly like an
   oracle violation, including shrinking and the repro line. *)

open Oib_dst
module Trace = Oib_obs.Trace
module Ctx = Oib_core.Ctx
module Catalog = Oib_core.Catalog
module San = Oib_san.San
module Diag = Oib_lint.Diag

(* Test-only oracle sabotage: plant a phantom entry in the index behind the
   WAL's back, right before the final battery. The consistency oracle must
   flag it, and the shrinker must carry the failure down to a minimal
   scenario — this is how the harness proves it can catch real bugs. *)
let sabotage_hook (ctx : Ctx.t) =
  match Catalog.index ctx.Ctx.catalog 10 with
  | info ->
    ignore
      (Oib_btree.Btree.set_state info.Catalog.tree
         (Oib_util.Ikey.make "zzz-sabotage"
            (Oib_util.Rid.make ~page:999_983 ~slot:0))
         Oib_wal.Log_record.Present)
  | exception Invalid_argument _ -> ()

(* Test-only race sabotage: a rogue fiber that dirties a heap page without
   holding its latch, concurrent with the latched workers and the build
   scan. The lockset sanitizer must flag the unprotected write; the oracle
   battery cannot see it. *)
let race_hook (ctx : Ctx.t) =
  ignore
    (Oib_sim.Sched.spawn ctx.Ctx.sched ~name:"rogue" (fun () ->
         match Catalog.table ctx.Ctx.catalog 1 with
         | exception Invalid_argument _ -> ()
         | info -> (
           match Oib_storage.Heap_file.page_ids info.Catalog.heap with
           | [] -> ()
           | first :: _ ->
             for _ = 1 to 3 do
               Oib_sim.Sched.yield ctx.Ctx.sched;
               Oib_storage.Page.mark_dirty
                 (Oib_storage.Heap_file.page info.Catalog.heap first)
             done)))

(* One sanitizer session per command invocation: a single live trace and
   San.t shared by every run the command performs, so the latch-order
   graph accumulates across runs and crash points (that cross-run
   assembly is how Goodlock predicts deadlocks neither run alone hits). *)
type sess = {
  sabotage : bool;
  sabotage_race : bool;
  san : (Trace.t * San.t) option;
}

let make_sess ~sabotage ~sabotage_race ~sanitize () =
  if not sanitize then { sabotage; sabotage_race; san = None }
  else begin
    let tr = Trace.create () in
    ignore (Trace.attach_recorder tr ~capacity:256);
    (* injected-crash dumps are routine during sweeps; stay silent until
       the sanitizer itself has something to show *)
    Trace.set_on_dump tr (fun _ -> ());
    let san = San.create () in
    San.attach san tr;
    let dumped = ref false in
    San.on_report san (fun d ->
        Printf.printf "SAN: %s\n%!" (Diag.to_string d);
        (* dump the ring on the first finding, while the racing run's
           events are still in it; the print sink is installed only
           around this dump so injected-crash dumps stay silent *)
        if not !dumped then begin
          dumped := true;
          Trace.set_on_dump tr (fun s ->
              print_string s;
              print_newline ());
          Trace.failure tr ~reason:"oib-san: first sanitizer finding";
          Trace.set_on_dump tr (fun _ -> ())
        end);
    { sabotage; sabotage_race; san = Some (tr, san) }
  end

let sanitizing sess = sess.san <> None
let trace_of sess = Option.map fst sess.san
let inject_of sess = if sess.sabotage then Some sabotage_hook else None
let during_of sess = if sess.sabotage_race then Some race_hook else None

let san_dirty sess =
  match sess.san with None -> false | Some (_, san) -> not (San.clean san)

let print_outcome (o : Runner.outcome) =
  Printf.printf
    "incarnations=%d steps=%d committed=%d%s oracle=%s\n"
    o.Runner.incarnations o.Runner.total_steps o.Runner.committed
    (if o.Runner.build_cancelled then " build-cancelled" else "")
    (if Runner.failed o then "FAIL" else "ok")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* End-of-command sanitizer epilogue: stats JSON, the static-vs-runtime
   latch-graph diff against `oib-lint --emit-graph` output, the
   static-vs-dynamic shared-state atomics diff against
   `oib-lint --emit-atomics` output, and the clean/dirty verdict line.
   A dynamic-only atomics crossing is a hard failure: the sanitizer
   watched a lost-update window the linter's table calls atomic. *)
let finish sess ~lint_graph ~san_json ~atomics =
  match sess.san with
  | None -> ()
  | Some (_, san) ->
    (match san_json with
    | Some path ->
      let oc = open_out path in
      output_string oc (San.stats_json san);
      output_string oc "\n";
      close_out oc;
      Printf.printf "sanitizer stats written to %s\n" path
    | None -> ());
    (match lint_graph with
    | Some path -> (
      match San.static_graph_of_json (read_file path) with
      | Error e -> Printf.printf "lint-graph %s: %s\n" path e
      | Ok static ->
        let edges = San.runtime_edges san in
        Printf.printf "latch-order graph: %d runtime edge(s)\n"
          (List.length edges);
        List.iter (fun (a, b) -> Printf.printf "  %s -> %s\n" a b) edges;
        (match San.diff_static san ~static with
        | [] -> Printf.printf "static and runtime latch graphs agree\n"
        | ds -> List.iter (fun d -> print_endline (Diag.to_string d)) ds))
    | None -> ());
    (match atomics with
    | Some path -> (
      match San.static_atomics_of_json (read_file path) with
      | Error e -> Printf.printf "atomics %s: %s\n" path e
      | Ok static ->
        let dynamic = San.shared_crossings san in
        Printf.printf
          "shared-state atomics: %d dynamic crossing(s), %d static\n"
          (List.length dynamic) (List.length static);
        let ds = San.diff_atomics san ~static in
        (match ds with
        | [] -> Printf.printf "static and dynamic atomics tables agree\n"
        | ds -> List.iter (fun d -> print_endline (Diag.to_string d)) ds);
        if
          List.exists (fun (d : Diag.t) -> d.Diag.rule = "SAN-atomics") ds
        then begin
          Printf.printf
            "ATOMICS VIOLATION: runtime observed a shared-state crossing \
             the static table calls atomic\n%!";
          exit 1
        end)
    | None -> ());
    if San.clean san then Printf.printf "sanitizer: clean\n%!"

(* Does this scenario reproduce *some* violation — oracle or, when
   sanitizing, a finding in a fresh scratch sanitizer (so shrink
   candidates don't pollute the session's accumulated state)? *)
let reproduces sess c =
  match sess.san with
  | None ->
    Runner.failed
      (Runner.run ?inject:(inject_of sess) ?during:(during_of sess) c)
  | Some _ ->
    let tr = Trace.create () in
    let scratch = San.create () in
    San.attach scratch tr;
    let o =
      Runner.run ~trace:tr ?inject:(inject_of sess) ?during:(during_of sess)
        c
    in
    Runner.failed o || not (San.clean scratch)

(* Shrink the failure, dump the minimal run's flight recorder, print the
   repro line. Never returns a passing status: caller exits 1 after. *)
let report_failure sess (o : Runner.outcome) =
  if o.Runner.errors <> [] then begin
    Printf.printf "ORACLE VIOLATION at %s:\n"
      (Option.value o.Runner.failed_at ~default:"?");
    List.iter (fun e -> Printf.printf "  %s\n" e) o.Runner.errors
  end;
  (match sess.san with
  | Some (_, san) when not (San.clean san) ->
    Printf.printf "SANITIZER VIOLATION:\n";
    List.iter
      (fun d -> Printf.printf "  %s\n" (Diag.to_string d))
      (San.reports san)
  | _ -> ());
  print_endline "shrinking...";
  let small, runs = Shrink.shrink ~reproduces:(reproduces sess) o.Runner.scenario in
  Format.printf "minimal after %d runs: %a@." runs Scenario.pp small;
  (* replay the minimal scenario with a fresh recorder (and, when
     sanitizing, a fresh sanitizer) and dump its flight recorder *)
  let tr = Trace.create () in
  ignore (Trace.attach_recorder tr ~capacity:256);
  Trace.set_on_dump tr (fun _ -> ());
  let minimal_san =
    if not (sanitizing sess) then None
    else begin
      let s = San.create () in
      San.attach s tr;
      Some s
    end
  in
  let o2 =
    Runner.run ~trace:tr ?inject:(inject_of sess) ?during:(during_of sess)
      small
  in
  List.iter (fun e -> Printf.printf "  %s\n" e) o2.Runner.errors;
  (match minimal_san with
  | Some s ->
    List.iter (fun d -> Printf.printf "  %s\n" (Diag.to_string d))
      (San.reports s)
  | None -> ());
  Trace.set_on_dump tr (fun s ->
      print_string s;
      print_newline ());
  Trace.failure tr ~reason:"oib-fuzz violation (minimal scenario)";
  Printf.printf "repro: %s\n%!"
    (Scenario.repro_command ~sabotage:sess.sabotage
       ~sabotage_race:sess.sabotage_race ~sanitize:(sanitizing sess) small)

let exec sess ~jsonl ~lint_graph ~san_json ~atomics ?profile sc =
  Format.printf "%a@." Scenario.pp sc;
  let trace, close =
    match (trace_of sess, jsonl, profile) with
    | None, None, None -> (None, fun () -> ())
    | tr0, jsonl, _ ->
      let tr =
        match tr0 with
        | Some t -> t
        | None ->
          let t = Trace.create () in
          ignore (Trace.attach_recorder t ~capacity:2048);
          t
      in
      let close =
        match jsonl with
        | None -> fun () -> ()
        | Some path ->
          let c = Trace.add_jsonl_file_sink tr ~path in
          fun () ->
            c ();
            Printf.printf "event trace written to %s\n" path
      in
      (Some tr, close)
  in
  (* --profile: one profiler per engine incarnation (each new scheduler
     needs a fresh step hook); the last one standing covers the capture's
     final incarnation, which is the one a shrunk failure dies in *)
  let prof_state = ref None in
  let on_engine =
    match profile with
    | None -> None
    | Some every ->
      Some
        (fun (ctx : Ctx.t) ->
          (match !prof_state with
          | Some (_, uninstall) -> uninstall ()
          | None -> ());
          prof_state :=
            Some (Oib_core.Obs_sampler.install_profiler ctx ~every ()))
  in
  let o =
    Runner.run ?trace ?inject:(inject_of sess) ?during:(during_of sess)
      ?on_engine sc
  in
  print_outcome o;
  (match !prof_state with
  | None -> ()
  | Some (p, _) ->
    let module Profiler = Oib_obs.Profiler in
    Printf.printf "profile (final incarnation): %d samples in %d rounds\n"
      (Profiler.samples p) (Profiler.ticks p);
    List.iter
      (fun (state, w) -> Printf.printf "  %-9s %6d\n" state w)
      (Profiler.by_state p));
  close ();
  if Runner.failed o || san_dirty sess then begin
    report_failure sess o;
    finish sess ~lint_graph ~san_json ~atomics;
    exit 1
  end;
  finish sess ~lint_graph ~san_json ~atomics

let cmd_run seed alg rows workers txns sabotage sabotage_race sanitize jsonl
    lint_graph san_json atomics profile =
  let sess = make_sess ~sabotage ~sabotage_race ~sanitize () in
  let sc =
    Scenario.generate ~seed
    |> Scenario.override
         ?alg:(Option.map Scenario.alg_of_string alg)
         ?rows ?workers ?txns
  in
  exec sess ~jsonl ~lint_graph ~san_json ~atomics ?profile sc

let cmd_repro seed alg rows unique workers txns ops post faults sabotage
    sabotage_race sanitize jsonl lint_graph san_json atomics profile =
  let sess = make_sess ~sabotage ~sabotage_race ~sanitize () in
  let sc =
    Scenario.generate ~seed
    |> Scenario.override
         ?alg:(Option.map Scenario.alg_of_string alg)
         ?rows ~unique ?workers ?txns ?ops ?post
         ?faults:(Option.map Scenario.faults_of_string faults)
  in
  exec sess ~jsonl ~lint_graph ~san_json ~atomics ?profile sc

let cmd_fuzz count seed_base alg sabotage sabotage_race sanitize lint_graph
    san_json atomics =
  let sess = make_sess ~sabotage ~sabotage_race ~sanitize () in
  let alg = Option.map Scenario.alg_of_string alg in
  for seed = seed_base to seed_base + count - 1 do
    let sc = Scenario.generate ~seed |> Scenario.override ?alg in
    let o =
      Runner.run ?trace:(trace_of sess) ?inject:(inject_of sess)
        ?during:(during_of sess) sc
    in
    Format.printf "seed %4d: %a@." seed Scenario.pp sc;
    Printf.printf "          ";
    print_outcome o;
    if Runner.failed o || san_dirty sess then begin
      report_failure sess o;
      finish sess ~lint_graph ~san_json ~atomics;
      exit 1
    end
  done;
  Printf.printf "%d scenarios clean\n" count;
  finish sess ~lint_graph ~san_json ~atomics

let cmd_sweep alg scenarios seed_base points sabotage sabotage_race sanitize
    lint_graph san_json atomics =
  let sess = make_sess ~sabotage ~sabotage_race ~sanitize () in
  let alg = Scenario.alg_of_string alg in
  let total = ref 0 in
  let fail o =
    report_failure sess o;
    finish sess ~lint_graph ~san_json ~atomics;
    exit 1
  in
  let rerun sc =
    Runner.run ?inject:(inject_of sess) ?during:(during_of sess) sc
  in
  for i = 0 to scenarios - 1 do
    let seed = seed_base + i in
    let sc = Scenario.generate ~seed |> Scenario.override ~alg in
    Format.printf "%a@." Scenario.pp sc;
    let r =
      Sweep.sweep ?trace:(trace_of sess) ?inject:(inject_of sess)
        ?during:(during_of sess) sc ~points
    in
    if r.Sweep.base_errors <> [] then begin
      Printf.printf "fault-free base run FAILS:\n";
      fail (rerun (Scenario.override ~faults:[] sc))
    end;
    total := !total + 1 + List.length r.Sweep.points;
    Printf.printf "  base %d steps, %d crash points: " r.Sweep.base_steps
      (List.length r.Sweep.points);
    (match Sweep.failures r with
    | [] when not (san_dirty sess) -> Printf.printf "all clean\n%!"
    | [] ->
      Printf.printf "SANITIZER FAIL\n";
      fail (rerun (Scenario.override ~faults:[] sc))
    | p :: _ ->
      Printf.printf "FAIL at step %d\n" p.Sweep.crash_step;
      fail
        (rerun
           (Scenario.override ~faults:[ Scenario.Crash_at p.Sweep.crash_step ]
              sc)))
  done;
  Printf.printf "%d scenario/crash-point combinations clean\n" !total;
  finish sess ~lint_graph ~san_json ~atomics

(* Crash-at-every-step sweep over resumable builds with the
   scan-accounting oracle attached: on top of the runner's battery,
   every crash point proves that no page is ever re-extracted after its
   range was sealed — resume really does skip covered ranges. *)
let cmd_resume_sweep alg scenarios seed_base points =
  let alg = Scenario.alg_of_string alg in
  let total = ref 0 and scans = ref 0 and seals = ref 0 in
  for i = 0 to scenarios - 1 do
    let seed = seed_base + i in
    let sc = Scenario.generate ~seed |> Scenario.override ~alg in
    let r = Resume_sweep.run sc ~points in
    Format.printf "%a@." Scenario.pp r.Resume_sweep.scenario;
    if r.Resume_sweep.base_errors <> [] then begin
      Printf.printf "fault-free base run FAILS:\n";
      List.iter (fun e -> Printf.printf "  %s\n" e) r.Resume_sweep.base_errors;
      exit 1
    end;
    total := !total + List.length r.Resume_sweep.points;
    scans := !scans + r.Resume_sweep.total_scans;
    seals := !seals + r.Resume_sweep.total_seals;
    Printf.printf "  base %d steps, %d crash points, %d scans / %d seals: "
      r.Resume_sweep.base_steps
      (List.length r.Resume_sweep.points)
      r.Resume_sweep.total_scans r.Resume_sweep.total_seals;
    match Resume_sweep.failures r with
    | [] -> Printf.printf "all clean\n%!"
    | p :: _ ->
      Printf.printf "FAIL at step %d\n" p.Resume_sweep.crash_step;
      List.iter (fun e -> Printf.printf "  %s\n" e) p.Resume_sweep.errors;
      Printf.printf "repro: %s\n%!"
        (Scenario.repro_command
           (Scenario.override
              ~faults:[ Scenario.Crash_at p.Resume_sweep.crash_step ]
              r.Resume_sweep.scenario));
      exit 1
  done;
  if !seals = 0 then begin
    (* a sweep that never sealed a range proved nothing *)
    Printf.printf "resume sweep observed no range seals — oracle was blind\n";
    exit 1
  end;
  Printf.printf "%d crash points clean (%d scans, %d seals accounted)\n" !total
    !scans !seals

(* Deterministic throttle scenario: a synthetic overload source trips the
   foreground-p99 signal for a fixed span of sampler ticks, so the
   admission throttle must back the builder off and then fully restore
   under hysteresis. Run twice with the same seed, tracing to JSONL, and
   require byte-identical event streams. *)
let cmd_throttle seed rows workers txns prefix =
  let module Signal = Oib_obs.Signal in
  let module Throttle = Oib_core.Throttle in
  let run_once path =
    let sc =
      Scenario.generate ~seed
      |> Scenario.override ~rows ~workers ~txns ~faults:[]
    in
    let tr = Trace.create () in
    let close = Trace.add_jsonl_file_sink tr ~path in
    let captured = ref None in
    let on_engine (ctx : Ctx.t) =
      captured := Some ctx;
      (* Re-wire the p99 signal to a synthetic source: overloaded from
         the 3rd through the 8th sampler tick, idle otherwise. Keeping
         the engine's thresholds (and its subscribers — register re-wires
         the source in place) means the raise/clear path under test is
         exactly the production one. *)
      let ticks = ref 0 in
      Signal.register ctx.Ctx.signals ~name:"overload.fg_p99"
        ~raise_above:60.0 ~clear_below:25.0
        ~source:(fun () ->
          incr ticks;
          if !ticks >= 3 && !ticks <= 8 then 100.0 else 0.0);
      (* quiesce the other watched signals: the scenario must be driven
         by the synthetic overload alone, or a raised wal.backlog would
         legitimately hold the level up past the p99 clear *)
      Signal.register ctx.Ctx.signals ~name:"wal.backlog"
        ~raise_above:16384.0 ~clear_below:4096.0 ~source:(fun () -> 0.0);
      Signal.register ctx.Ctx.signals ~name:"pool.dirty_ratio"
        ~raise_above:0.7 ~clear_below:0.4 ~source:(fun () -> 0.0);
      Oib_core.Obs_sampler.install ctx ~every:20
    in
    let o = Runner.run ~trace:tr ~on_engine sc in
    close ();
    (o, !captured)
  in
  let check label (o, captured) =
    if Runner.failed o then begin
      Printf.printf "%s: ORACLE VIOLATION\n" label;
      List.iter (fun e -> Printf.printf "  %s\n" e) o.Runner.errors;
      exit 1
    end;
    match captured with
    | None ->
      Printf.printf "%s: runner never surfaced an engine\n" label;
      exit 1
    | Some (ctx : Ctx.t) ->
      let th = ctx.Ctx.throttle in
      Printf.printf "%s: backoffs=%d restores=%d final-level=%d\n" label
        (Throttle.backoffs th) (Throttle.restores th) (Throttle.level th);
      if Throttle.backoffs th = 0 then begin
        Printf.printf "%s: synthetic overload never backed the builder off\n"
          label;
        exit 1
      end;
      if Throttle.level th <> 0 || Throttle.restores th = 0 then begin
        Printf.printf "%s: throttle did not restore after the signal cleared\n"
          label;
        exit 1
      end
  in
  let a = prefix ^ ".1.jsonl" and b = prefix ^ ".2.jsonl" in
  check "run 1" (run_once a);
  check "run 2" (run_once b);
  let ta = read_file a and tb = read_file b in
  if String.length ta = 0 then begin
    Printf.printf "empty event trace — nothing was compared\n";
    exit 1
  end;
  if not (String.equal ta tb) then begin
    Printf.printf
      "DETERMINISM VIOLATION: %s and %s differ (%d vs %d bytes)\n" a b
      (String.length ta) (String.length tb);
    exit 1
  end;
  Printf.printf "throttle backoff/restore deterministic: %d bytes identical\n"
    (String.length ta)

open Cmdliner

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Scenario seed")

let alg_opt =
  Arg.(
    value
    & opt (some string) None
    & info [ "a"; "alg" ] ~docv:"ALG" ~doc:"Force nsf, sf or iot")

let rows_opt =
  Arg.(value & opt (some int) None & info [ "rows" ] ~docv:"N")

let workers_opt =
  Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"W")

let txns_opt =
  Arg.(value & opt (some int) None & info [ "txns" ] ~docv:"T" ~doc:"Per worker")

let sabotage_arg =
  Arg.(
    value & flag
    & info [ "sabotage" ]
        ~doc:"Test-only: corrupt the index before the final oracle battery")

let sabotage_race_arg =
  Arg.(
    value & flag
    & info [ "sabotage-race" ]
        ~doc:
          "Test-only: spawn a rogue fiber that dirties a heap page without \
           latching it; the race sanitizer must flag it")

let sanitize_arg =
  Arg.(
    value & flag
    & info [ "sanitize" ]
        ~doc:
          "Stream probe events through oib-san (lockset races, latch-order \
           cycles, WAL discipline); findings fail like oracle violations")

let jsonl_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-jsonl" ] ~docv:"FILE"
        ~doc:"Write every trace event to $(docv) as JSON lines.")

let lint_graph_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "lint-graph" ] ~docv:"FILE"
        ~doc:
          "Static latch-order graph from `oib-lint --emit-graph`, diffed \
           against the runtime graph after the sanitized runs")

let san_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "san-json" ] ~docv:"FILE"
        ~doc:"Write sanitizer counters as JSON to $(docv)")

let atomics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "atomics" ] ~docv:"FILE"
        ~doc:
          "Static atomic-section table from `oib-lint --emit-atomics`, \
           diffed against the dynamically observed shared-state crossings \
           after the sanitized runs; a dynamic-only crossing fails the \
           command")

let profile_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "profile" ] ~docv:"K"
        ~doc:
          "Sample every live fiber every $(docv) steps; prof.sample events \
           land in --trace-jsonl and a final-incarnation state breakdown is \
           printed (analyze with oib-prof)")

let run_cmd =
  Cmd.v
    (Cmd.info "run" ~doc:"Run one generated scenario and its oracle battery")
    Term.(
      const cmd_run $ seed_arg $ alg_opt $ rows_opt $ workers_opt $ txns_opt
      $ sabotage_arg $ sabotage_race_arg $ sanitize_arg $ jsonl_arg
      $ lint_graph_arg $ san_json_arg $ atomics_arg $ profile_arg)

let repro_cmd =
  let ops = Arg.(value & opt (some int) None & info [ "ops" ] ~docv:"N") in
  let post =
    Arg.(value & opt (some int) None & info [ "post-txns" ] ~docv:"N")
  in
  let faults =
    Arg.(
      value
      & opt (some string) None
      & info [ "faults" ] ~docv:"PLAN"
          ~doc:"Comma-separated kind@step list (crash,media,ckpt,trunc,backup) or 'none'")
  in
  let unique = Arg.(value & flag & info [ "unique" ]) in
  Cmd.v
    (Cmd.info "repro" ~doc:"Replay a (shrunk) scenario from its repro line")
    Term.(
      const cmd_repro $ seed_arg $ alg_opt $ rows_opt $ unique $ workers_opt
      $ txns_opt $ ops $ post $ faults $ sabotage_arg $ sabotage_race_arg
      $ sanitize_arg $ jsonl_arg $ lint_graph_arg $ san_json_arg
      $ atomics_arg $ profile_arg)

let fuzz_cmd =
  let count =
    Arg.(value & opt int 25 & info [ "count" ] ~docv:"N" ~doc:"Scenarios to run")
  in
  let base =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~docv:"SEED" ~doc:"First seed")
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Generated scenarios with generated fault plans, shrink failures")
    Term.(
      const cmd_fuzz $ count $ base $ alg_opt $ sabotage_arg
      $ sabotage_race_arg $ sanitize_arg $ lint_graph_arg $ san_json_arg
      $ atomics_arg)

let sweep_cmd =
  let alg =
    Arg.(value & opt string "nsf" & info [ "a"; "alg" ] ~docv:"ALG")
  in
  let scenarios =
    Arg.(value & opt int 2 & info [ "scenarios" ] ~docv:"N" ~doc:"Seeds to sweep")
  in
  let base =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~docv:"SEED" ~doc:"First seed")
  in
  let points =
    Arg.(
      value & opt int 55
      & info [ "points" ] ~docv:"K" ~doc:"Crash points per scenario")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Re-run a scenario crashing at every k-th scheduler step")
    Term.(
      const cmd_sweep $ alg $ scenarios $ base $ points $ sabotage_arg
      $ sabotage_race_arg $ sanitize_arg $ lint_graph_arg $ san_json_arg
      $ atomics_arg)

let resume_sweep_cmd =
  let alg =
    Arg.(value & opt string "nsf" & info [ "a"; "alg" ] ~docv:"ALG")
  in
  let scenarios =
    Arg.(value & opt int 1 & info [ "scenarios" ] ~docv:"N" ~doc:"Seeds to sweep")
  in
  let base =
    Arg.(value & opt int 1 & info [ "seed-base" ] ~docv:"SEED" ~doc:"First seed")
  in
  let points =
    Arg.(
      value & opt int 40
      & info [ "points" ] ~docv:"K" ~doc:"Crash points per scenario")
  in
  Cmd.v
    (Cmd.info "resume-sweep"
       ~doc:
         "Crash-point sweep with the scan-accounting oracle: resumed builds \
          must never rescan a sealed range")
    Term.(const cmd_resume_sweep $ alg $ scenarios $ base $ points)

let throttle_cmd =
  let rows = Arg.(value & opt int 600 & info [ "rows" ] ~docv:"N") in
  let workers = Arg.(value & opt int 3 & info [ "workers" ] ~docv:"W") in
  let txns =
    Arg.(value & opt int 15 & info [ "txns" ] ~docv:"T" ~doc:"Per worker")
  in
  let prefix =
    Arg.(
      value & opt string "throttle-run"
      & info [ "trace-prefix" ] ~docv:"PATH"
          ~doc:"Event traces land in $(docv).1.jsonl / $(docv).2.jsonl")
  in
  Cmd.v
    (Cmd.info "throttle"
       ~doc:
         "Deterministic throttle scenario: synthetic overload must back the \
          builder off and restore, byte-identically across two runs")
    Term.(const cmd_throttle $ seed_arg $ rows $ workers $ txns $ prefix)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "oib-fuzz" ~version:"1.0"
             ~doc:
               "Deterministic simulation tests: scenario fuzzing, crash-point \
                sweeps, failure shrinking")
          [ run_cmd; fuzz_cmd; sweep_cmd; resume_sweep_cmd; throttle_cmd;
            repro_cmd ]))
