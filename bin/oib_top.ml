(* oib-top: terminal dashboard over the metrics plane.

   oib-top frame build.jsonl          # render one frame from a capture
   oib-top watch build.jsonl          # tail a capture being written
   oib-top live --rows 2000           # in-process soak, live frames

   All three fold events into Oib_obs_analysis.Dashboard; this binary
   only owns the terminal (clear-screen, polling, the soak workload). *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver
module Trace = Oib_obs.Trace
module TR = Oib_obs_analysis.Trace_reader
module Dashboard = Oib_obs_analysis.Dashboard

let clear_if_tty () =
  if Unix.isatty Unix.stdout then print_string "\027[2J\027[H"

let show dash =
  clear_if_tty ();
  print_string (Dashboard.render dash);
  flush stdout

(* -- frame: one shot from a finished capture -- *)

let cmd_frame path =
  if not (Sys.file_exists path) then begin
    Printf.eprintf "oib-top: no such file: %s\n" path;
    exit 2
  end;
  let events, errors = TR.of_file path in
  List.iter
    (fun (e : TR.error) ->
      Printf.eprintf "oib-top: %s:%d: %s\n" path e.line_no e.msg)
    errors;
  let dash = Dashboard.create () in
  Dashboard.feed_all dash events;
  print_string (Dashboard.render dash)

(* -- watch: tail a capture as it grows -- *)

(* Poll by byte offset: each round, read everything past [offset],
   feed the complete lines, keep the partial tail for the next round. *)
let cmd_watch path interval =
  let dash = Dashboard.create () in
  let offset = ref 0 in
  let partial = Buffer.create 256 in
  let feed_new () =
    let size = try (Unix.stat path).Unix.st_size with Unix.Unix_error _ -> 0 in
    if size <= !offset then false
    else begin
      let ic = open_in_bin path in
      seek_in ic !offset;
      let fresh = really_input_string ic (size - !offset) in
      close_in ic;
      offset := size;
      Buffer.add_string partial fresh;
      let data = Buffer.contents partial in
      Buffer.clear partial;
      let lines = String.split_on_char '\n' data in
      let rec consume = function
        | [] -> ()
        | [ tail ] -> Buffer.add_string partial tail
        | line :: rest ->
          (match TR.parse_line line with
          | Ok ev -> Dashboard.feed dash ev
          | Error _ -> ());
          consume rest
      in
      consume lines;
      true
    end
  in
  while true do
    if feed_new () then show dash;
    Unix.sleepf interval
  done

(* -- live: in-process soak with frames rendered off the event stream -- *)

let cmd_live rows workers txns seed every refresh delay =
  let dash = Dashboard.create () in
  let trace = Trace.create () in
  ignore (Trace.attach_recorder trace ~capacity:1024);
  Trace.set_on_dump trace prerr_endline;
  let last_shown = ref (-refresh) in
  Trace.add_sink trace ~name:"oib-top" (fun (s : Oib_obs.Event.stamped) ->
      Dashboard.feed dash s;
      if s.step >= !last_shown + refresh then begin
        last_shown := s.step;
        show dash;
        if delay > 0.0 then Unix.sleepf delay
      end);
  let ctx = Engine.create ~seed ~page_capacity:1024 ~trace () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows ~seed in
  Obs_sampler.install ctx ~every;
  let _ =
    Driver.spawn_workers ctx
      { Driver.default with seed; workers; txns_per_worker = txns }
      ~table:1
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  show dash;
  match Engine.consistency_errors ctx with
  | [] -> ()
  | errs ->
    List.iter prerr_endline errs;
    exit 1

open Cmdliner

let file_arg =
  Arg.(
    required
    & pos 0 (some string) None
    & info [] ~docv:"FILE" ~doc:"JSONL trace dump (from --trace-jsonl)")

let frame_cmd =
  Cmd.v
    (Cmd.info "frame" ~doc:"Render one dashboard frame from a finished capture")
    Term.(const cmd_frame $ file_arg)

let watch_cmd =
  let interval =
    Arg.(
      value & opt float 0.5
      & info [ "interval" ] ~docv:"SECS" ~doc:"Poll interval in seconds.")
  in
  Cmd.v
    (Cmd.info "watch"
       ~doc:"Tail a capture being written and re-render on new events")
    Term.(const cmd_watch $ file_arg $ interval)

let live_cmd =
  let opt_int name v doc =
    Arg.(value & opt int v & info [ name ] ~docv:"N" ~doc)
  in
  let delay =
    Arg.(
      value & opt float 0.0
      & info [ "delay" ] ~docv:"SECS"
          ~doc:"Real-time pause per frame (the simulator runs on virtual \
                time; a small delay makes the soak watchable).")
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:
         "Run an NSF build under a concurrent update workload in-process \
          and render live frames")
    Term.(
      const cmd_live
      $ opt_int "rows" 2000 "Rows in the base table."
      $ opt_int "workers" 4 "Concurrent updater fibers."
      $ opt_int "txns" 40 "Transactions per worker."
      $ opt_int "seed" 7 "Scheduler seed."
      $ opt_int "every" 200 "Sampler period in virtual steps."
      $ opt_int "refresh" 400 "Virtual steps between rendered frames."
      $ delay)

let () =
  exit
    (Cmd.eval
       (Cmd.group
          (Cmd.info "oib-top" ~version:"1.0"
             ~doc:
               "Live terminal dashboard for the online index build engine: \
                builds, foreground quantiles, resource rates, health signals")
          [ frame_cmd; watch_cmd; live_cmd ]))
