(* The index lifecycle state machine (Disabled -> Write_only -> Readable,
   with the two teardown edges back to Disabled): only DAG transitions are
   accepted, Write_only indexes absorb maintenance without serving reads,
   and a reopened engine always lands in the last WAL-logged state. *)

open Oib_core
module Btree = Oib_btree.Btree

let all_states = [| Catalog.Disabled; Catalog.Write_only; Catalog.Readable |]

let setup () =
  let ctx = Engine.create ~seed:11 ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

(* an index born Disabled (the builders' admission state), lifecycle
   driven by hand *)
let fresh_index ?(index_id = 10) ?(phase = Catalog.Ready) ctx =
  Catalog.add_index ctx.Ctx.catalog ctx.Ctx.pool ~state:Catalog.Disabled
    ~table_id:1 ~index_id ~key_cols:[ 0 ] ~unique:false ~phase

(* shortest legal path from Disabled to [target] *)
let drive ctx index_id target =
  let step to_ = Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool index_id to_ in
  match target with
  | Catalog.Disabled -> ()
  | Catalog.Write_only -> step Catalog.Write_only
  | Catalog.Readable ->
    step Catalog.Write_only;
    step Catalog.Readable

(* -------------------------------------------------------------------- *)
(* 1. the transition relation, exhaustively and as a random walk        *)

let legal_pairs =
  [
    (Catalog.Disabled, Catalog.Write_only);
    (Catalog.Write_only, Catalog.Readable);
    (Catalog.Write_only, Catalog.Disabled);
    (Catalog.Readable, Catalog.Disabled);
  ]

let test_all_pairs () =
  Array.iter
    (fun from_ ->
      Array.iter
        (fun to_ ->
          let expect = List.mem (from_, to_) legal_pairs in
          Alcotest.(check bool)
            (Printf.sprintf "legal_transition %s->%s" (Catalog.state_name from_)
               (Catalog.state_name to_))
            expect
            (Catalog.legal_transition ~from_ ~to_);
          (* a fresh engine per pair: drive to [from_], attempt [to_] *)
          let ctx = setup () in
          let info = fresh_index ctx in
          drive ctx info.Catalog.index_id from_;
          match
            Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool info.Catalog.index_id
              to_
          with
          | () ->
            Alcotest.(check bool) "accepted => legal" true expect;
            Alcotest.(check string) "state moved"
              (Catalog.state_name to_)
              (Catalog.state_name (Catalog.state ctx.Ctx.catalog 10))
          | exception Catalog.Illegal_transition { from_ = seen; _ } ->
            Alcotest.(check bool) "rejected => illegal" false expect;
            Alcotest.(check string) "exception carries from"
              (Catalog.state_name from_)
              (Catalog.state_name seen);
            Alcotest.(check string) "state unchanged"
              (Catalog.state_name from_)
              (Catalog.state_name (Catalog.state ctx.Ctx.catalog 10)))
        all_states)
    all_states

let prop_random_walk =
  QCheck.Test.make ~name:"random walk agrees with legal_transition" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 12) (int_bound 2))
    (fun targets ->
      let ctx = setup () in
      let info = fresh_index ctx in
      let model = ref Catalog.Disabled in
      List.for_all
        (fun i ->
          let to_ = all_states.(i) in
          let legal = Catalog.legal_transition ~from_:!model ~to_ in
          match
            Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool
              info.Catalog.index_id to_
          with
          | () ->
            model := to_;
            legal && Catalog.state ctx.Ctx.catalog 10 = to_
          | exception Catalog.Illegal_transition _ ->
            (not legal) && Catalog.state ctx.Ctx.catalog 10 = !model)
        targets)

(* -------------------------------------------------------------------- *)
(* 2. Write_only absorbs maintenance but never serves reads             *)

let must_reject_reads ctx ~index =
  (match
     Engine.run_txn ctx (fun txn ->
         ignore (Table_ops.index_lookup ctx txn ~index "k000"))
   with
  | Ok () -> Alcotest.fail "index_lookup served a non-Readable index"
  | Error _ -> Alcotest.fail "lookup failed for the wrong reason"
  | exception Invalid_argument _ -> ());
  match
    Engine.run_txn ctx (fun txn ->
        ignore (Table_ops.range_lookup ctx txn ~index ()))
  with
  | Ok () -> Alcotest.fail "range_lookup served a non-Readable index"
  | Error _ -> Alcotest.fail "range lookup failed for the wrong reason"
  | exception Invalid_argument _ -> ()

let test_write_only_absorbs () =
  let ctx = setup () in
  (* NSF-building descriptor: direct maintenance from creation on *)
  let wo =
    fresh_index ~index_id:10
      ~phase:(Catalog.Nsf_building { Catalog.avail_below = None })
      ctx
  in
  Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool 10 Catalog.Write_only;
  (* a Disabled sibling must stay untouched by the same traffic *)
  let off =
    fresh_index ~index_id:11
      ~phase:(Catalog.Nsf_building { Catalog.avail_below = None })
      ctx
  in
  let rid0 = ref Oib_util.Rid.minus_infinity in
  (match
     Engine.run_txn ctx (fun txn ->
         for i = 0 to 19 do
           let r =
             Table_ops.insert ctx txn ~table:1
               (Oib_util.Record.make
                  [| Printf.sprintf "k%03d" i; Printf.sprintf "v%d" i |])
           in
           if i = 0 then rid0 := r
         done)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "insert txn failed");
  Alcotest.(check int) "write_only index absorbed the inserts" 20
    (Btree.entry_count wo.Catalog.tree);
  Alcotest.(check int) "disabled index untouched" 0
    (Btree.entry_count off.Catalog.tree);
  must_reject_reads ctx ~index:10;
  must_reject_reads ctx ~index:11;
  (* deletes are absorbed too (pseudo-delete, entry becomes a tombstone) *)
  (match Engine.run_txn ctx (fun txn -> Table_ops.delete ctx txn ~table:1 !rid0)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "delete txn failed");
  Alcotest.(check int) "delete pseudo-deleted in the write_only index" 1
    (Btree.pseudo_count wo.Catalog.tree);
  must_reject_reads ctx ~index:10;
  (* once Readable (and Ready), the same index serves the lookup *)
  Catalog.set_phase ctx.Ctx.catalog 10 Catalog.Ready;
  Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool 10 Catalog.Readable;
  match
    Engine.run_txn ctx (fun txn ->
        let hits = Table_ops.index_lookup ctx txn ~index:10 "k005" in
        Alcotest.(check int) "readable lookup finds the row" 1
          (List.length hits))
  with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "readable lookup txn failed"

(* -------------------------------------------------------------------- *)
(* 3. reopen after a crash lands in the last WAL-logged state           *)

let test_crash_lands_in_logged_state () =
  let ctx = setup () in
  let _ = fresh_index ctx in
  Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool 10 Catalog.Write_only;
  let ctx = Engine.crash ctx in
  Alcotest.(check string) "write_only survives the crash" "write-only"
    (Catalog.state_name (Catalog.state ctx.Ctx.catalog 10));
  Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool 10 Catalog.Readable;
  Catalog.set_phase ctx.Ctx.catalog 10 Catalog.Ready;
  let ctx = Engine.crash ctx in
  Alcotest.(check string) "readable survives the crash" "readable"
    (Catalog.state_name (Catalog.state ctx.Ctx.catalog 10));
  Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool 10 Catalog.Disabled;
  let ctx = Engine.crash ctx in
  Alcotest.(check string) "disabled survives the crash" "disabled"
    (Catalog.state_name (Catalog.state ctx.Ctx.catalog 10))

let prop_crash_preserves_state =
  QCheck.Test.make
    ~name:"crash after any legal walk lands in the walk's last state"
    ~count:30
    QCheck.(list_of_size Gen.(int_range 0 8) (int_bound 2))
    (fun targets ->
      let ctx = setup () in
      let info = fresh_index ctx in
      let model = ref Catalog.Disabled in
      List.iter
        (fun i ->
          let to_ = all_states.(i) in
          if Catalog.legal_transition ~from_:!model ~to_ then begin
            Catalog.set_state ctx.Ctx.catalog ctx.Ctx.pool
              info.Catalog.index_id to_;
            model := to_
          end)
        targets;
      (* keep Readable consistent with a finished build before recovery,
         else the restart logic legitimately downgrades it *)
      if !model = Catalog.Readable then
        Catalog.set_phase ctx.Ctx.catalog 10 Catalog.Ready;
      let ctx' = Engine.crash ctx in
      Catalog.state ctx'.Ctx.catalog 10 = !model)

(* a corrupted or future-version catalog page must fail loudly with the
   typed error, never map to an arbitrary state *)
let test_state_of_int_roundtrip () =
  List.iter
    (fun st ->
      Alcotest.(check bool) "roundtrips" true
        (Catalog.state_of_int (Catalog.state_to_int st) = st))
    [ Catalog.Disabled; Catalog.Write_only; Catalog.Readable ];
  List.iter
    (fun bogus ->
      Alcotest.check_raises
        (Printf.sprintf "state_of_int %d raises" bogus)
        (Catalog.Invalid_index_state bogus)
        (fun () -> ignore (Catalog.state_of_int bogus)))
    [ -1; 3; 42; max_int ]

let () =
  Alcotest.run "lifecycle"
    [
      ( "transitions",
        [
          Alcotest.test_case "all 9 pairs, driven" `Quick test_all_pairs;
          QCheck_alcotest.to_alcotest prop_random_walk;
          Alcotest.test_case "state_of_int rejects corruption" `Quick
            test_state_of_int_roundtrip;
        ] );
      ( "write_only",
        [
          Alcotest.test_case "absorbs writes, rejects reads" `Quick
            test_write_only_absorbs;
        ] );
      ( "crash",
        [
          Alcotest.test_case "state ladder across crashes" `Quick
            test_crash_lands_in_logged_state;
          QCheck_alcotest.to_alcotest prop_crash_preserves_state;
        ] );
    ]
