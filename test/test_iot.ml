(* The §6.2 index-organized-table variant: secondary index built by
   range-scanning a unique primary index in key order, with current-key
   visibility. Records are [| primary_key; secondary |]; the primary key is
   immutable (the storage model's assumption). *)

open Oib_core
open Oib_util
module Sched = Oib_sim.Sched

let pk i = Printf.sprintf "pk%06d" i

let setup ?(seed = 5) ~rows () =
  let ctx = Engine.create ~seed ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let rids = ref [] in
  (match
     Engine.run_txn ctx (fun txn ->
         for i = 0 to rows - 1 do
           let r = Record.make [| pk i; Printf.sprintf "s%04d" (i mod 97) |] in
           rids := Table_ops.insert ctx txn ~table:1 r :: !rids
         done)
   with
  | Ok () -> ()
  | Error _ -> failwith "populate");
  (* the primary index (unique, on col 0) *)
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib-primary" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 1; key_cols = [ 0 ]; unique = true }));
  Sched.run ctx.Ctx.sched;
  (ctx, Array.of_list (List.rev !rids))

let build_secondary ?(cfg = Ib.default_config Ib.Sf) ctx =
  Ib.build_secondary_via_primary ctx cfg ~table:1 ~primary:1
    { Ib.index_id = 2; key_cols = [ 1 ]; unique = false }

let check_clean ctx =
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx)

let test_quiet_build () =
  let ctx, _ = setup ~rows:400 () in
  ignore (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () -> build_secondary ctx));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  let info = Catalog.index ctx.Ctx.catalog 2 in
  Alcotest.(check bool) "ready" true (info.phase = Catalog.Ready);
  Alcotest.(check int) "all keys" 400 (Oib_btree.Btree.present_count info.tree);
  (* bottom-up build: perfectly clustered *)
  Alcotest.(check (float 0.001)) "clustered" 1.0
    (Oib_btree.Bt_check.clustering info.tree)

(* workers that respect primary-key immutability *)
let spawn_pk_workers ctx rids ~workers ~ops seed0 =
  let next_pk = ref 1_000_000 in
  for w = 0 to workers - 1 do
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:(Printf.sprintf "w%d" w) (fun () ->
           let rng = Rng.create (seed0 + w) in
           for _ = 1 to ops do
             (match
                Engine.run_txn ctx (fun txn ->
                    match Rng.int rng 3 with
                    | 0 ->
                      incr next_pk;
                      ignore
                        (Table_ops.insert ctx txn ~table:1
                           (Record.make
                              [| pk !next_pk;
                                 Printf.sprintf "s%04d" (Rng.int rng 97) |]))
                    | 1 -> (
                      let rid = Rng.pick rng rids in
                      (* update only the secondary column *)
                      match Table_ops.read ctx txn ~table:1 rid with
                      | Some r ->
                        let r' =
                          Record.make
                            [| r.Record.cols.(0);
                               Printf.sprintf "s%04d" (Rng.int rng 97) |]
                        in
                        Table_ops.update ctx txn ~table:1 rid r'
                      | None -> ())
                    | _ -> (
                      let rid = Rng.pick rng rids in
                      match Table_ops.delete ctx txn ~table:1 rid with
                      | () -> ()
                      | exception Not_found -> ()))
              with
             | Ok () | Error _ -> ());
             Sched.yield ctx.Ctx.sched
           done))
  done

let test_build_under_fire () =
  let ctx, rids = setup ~rows:400 () in
  spawn_pk_workers ctx rids ~workers:4 ~ops:30 77;
  let appends_before = ctx.Ctx.metrics.sidefile_appends in
  ignore (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () -> build_secondary ctx));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  Alcotest.(check bool) "ready" true
    ((Catalog.index ctx.Ctx.catalog 2).phase = Catalog.Ready);
  Alcotest.(check bool) "current-key visibility routed to side-file" true
    (ctx.Ctx.metrics.sidefile_appends > appends_before)

let test_crash_resume () =
  let ctx, rids = setup ~rows:400 () in
  spawn_pk_workers ctx rids ~workers:3 ~ops:60 78;
  ignore (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () -> build_secondary ctx));
  Sched.set_crash_trap ctx.Ctx.sched (fun steps -> steps >= 250);
  (try Sched.run ctx.Ctx.sched with Sched.Crashed -> ());
  let ctx' = Engine.crash ctx in
  let cfg = Ib.default_config Ib.Sf in
  ignore
    (Sched.spawn ctx'.Ctx.sched ~name:"resume" (fun () ->
         Ib.resume_builds ctx' cfg;
         match Catalog.index ctx'.Ctx.catalog 2 with
         | _ -> ()
         | exception Invalid_argument _ ->
           build_secondary ~cfg ctx'));
  Sched.run ctx'.Ctx.sched;
  check_clean ctx';
  Alcotest.(check bool) "ready after resume" true
    ((Catalog.index ctx'.Ctx.catalog 2).phase = Catalog.Ready)

let test_rejects_bad_primary () =
  let ctx, _ = setup ~rows:50 () in
  (* a non-unique index cannot anchor the key-order scan *)
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib0" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 3; key_cols = [ 1 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  Alcotest.check_raises "non-unique primary rejected"
    (Invalid_argument "Ib.build_secondary_via_primary: primary index not unique")
    (fun () ->
      Ib.build_secondary_via_primary ctx (Ib.default_config Ib.Sf) ~table:1
        ~primary:3
        { Ib.index_id = 4; key_cols = [ 1 ]; unique = false })

let prop_iot_seeds =
  QCheck.Test.make ~name:"IOT secondary build consistent across seeds"
    ~count:10 QCheck.small_nat (fun seed ->
      let ctx, rids = setup ~seed:(seed + 1) ~rows:200 () in
      spawn_pk_workers ctx rids ~workers:3 ~ops:15 (seed * 13);
      ignore
        (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () -> build_secondary ctx));
      Sched.run ctx.Ctx.sched;
      Engine.consistency_errors ctx = []
      && (Catalog.index ctx.Ctx.catalog 2).phase = Catalog.Ready)

let () =
  Alcotest.run "iot"
    [
      ( "build",
        [
          Alcotest.test_case "quiet build via primary" `Quick test_quiet_build;
          Alcotest.test_case "under concurrent updates" `Quick
            test_build_under_fire;
          Alcotest.test_case "crash and resume" `Quick test_crash_resume;
          Alcotest.test_case "rejects bad primary" `Quick test_rejects_bad_primary;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_iot_seeds ]);
    ]
