(* The online metrics plane: sliding-window quantiles vs an exact
   histogram, registry snapshot/JSON round-trips, signal hysteresis,
   online-vs-offline quantile agreement, per-build resource accounting
   and the overload signal under hot vs quiet traffic. *)

open Oib_core
module Sched = Oib_sim.Sched
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event
module Hist = Oib_obs.Hist
module Window = Oib_obs.Window
module Registry = Oib_obs.Registry
module Signal = Oib_obs.Signal
module Resource = Oib_obs.Resource
module Driver = Oib_workload.Driver
module Quantiles = Oib_obs_analysis.Quantiles
module Json = Oib_obs_analysis.Json
module BS = Build_status

(* --- Window vs exact Hist ------------------------------------------- *)

(* A window over [slots] ticks must agree exactly with a histogram fed
   only the observations of the last [slots] ticks (same buckets, merged
   counts) — for any observation stream and rotation pattern. *)
let window_matches_exact (slots, ticks) =
  let w = Window.create ~slots () in
  (* per-tick observation lists, newest first *)
  let per_tick = ref [ [] ] in
  List.iter
    (fun obs_this_tick ->
      List.iter
        (fun v ->
          Window.observe w v;
          per_tick :=
            (match !per_tick with
            | cur :: rest -> (v :: cur) :: rest
            | [] -> [ [ v ] ]))
        obs_this_tick;
      Window.rotate w;
      per_tick := [] :: !per_tick)
    ticks;
  let live =
    (* the window holds the open tick plus the last [slots - 1] full ones *)
    List.filteri (fun i _ -> i < slots) !per_tick |> List.concat
  in
  let exact = Hist.create () in
  List.iter (Hist.observe exact) live;
  let q p = (Window.percentile w p, Hist.percentile exact p) in
  Window.count w = Hist.count exact
  && List.for_all (fun p -> fst (q p) = snd (q p)) [ 0.5; 0.95; 0.99 ]

let qcheck_window =
  QCheck.Test.make ~count:200 ~name:"window quantiles = exact hist of live ticks"
    QCheck.(
      pair (int_range 1 6)
        (small_list (small_list (int_range 0 5000))))
    window_matches_exact

let test_window_basics () =
  Alcotest.check_raises "slots must be positive"
    (Invalid_argument "Window.create: slots < 1") (fun () ->
      ignore (Window.create ~slots:0 ()));
  let w = Window.create ~slots:2 () in
  Alcotest.(check (float 0.0)) "empty percentile" 0.0 (Window.percentile w 0.99);
  Window.observe w 10;
  Window.rotate w;
  Window.observe w 20;
  Alcotest.(check int) "both ticks live" 2 (Window.count w);
  Window.rotate w;
  (* first tick's observation has aged out *)
  Alcotest.(check int) "oldest aged out" 1 (Window.count w);
  Alcotest.(check int) "rotations counted" 2 (Window.rotations w)

(* --- registry snapshot / JSON round-trip ---------------------------- *)

let test_registry_roundtrip () =
  let reg = Registry.create () in
  let c = Registry.counter reg ~labels:[ ("role", "scan") ] "pool.page_read" in
  Registry.add c 41;
  Registry.incr c;
  let cell = ref 7 in
  Registry.gauge reg "pool.dirty_pages" (fun () -> !cell);
  let w = Registry.window reg ~slots:4 "fg.latency" in
  Window.observe w 12;
  Window.observe w 40;
  let json =
    match Json.parse (Registry.to_json reg) with
    | Ok j -> j
    | Error m -> Alcotest.failf "registry JSON does not parse: %s" m
  in
  let int_member k =
    match Option.bind (Json.member k json) Json.to_int with
    | Some v -> v
    | None -> Alcotest.failf "missing int member %S" k
  in
  Alcotest.(check int) "labelled counter survives" 42
    (int_member "pool.page_read{role=scan}");
  Alcotest.(check int) "gauge read at snapshot" 7 (int_member "pool.dirty_pages");
  cell := 9;
  Alcotest.(check int) "gauge re-read, not cached" 9
    (match Registry.snapshot reg with
    | s -> (
      match List.assoc "pool.dirty_pages" s with
      | Registry.Int v -> v
      | _ -> Alcotest.fail "gauge kind"));
  (* window flattens into the sample view under the window. prefix *)
  let samples = Registry.sample_values reg in
  Alcotest.(check int) "window count sampled" 2
    (List.assoc "window.fg.latency.count" samples);
  Alcotest.(check bool) "window p99 sampled" true
    (List.mem_assoc "window.fg.latency.p99" samples);
  (* find-or-create returns the same series; kind clash is an error *)
  Alcotest.(check int) "counter interned" 42
    (Registry.counter_value
       (Registry.counter reg ~labels:[ ("role", "scan") ] "pool.page_read"));
  Alcotest.check_raises "kind clash"
    (Invalid_argument
       "Registry: \"fg.latency\" already registered as a window, wanted a \
        counter") (fun () -> ignore (Registry.counter reg "fg.latency"))

(* A name registered as one kind and looked up (or re-registered) as
   another must raise, never shadow: a silent miss would swallow the
   caller's observations. Same-kind re-registration stays legal — the
   documented crash-re-wiring path for gauges. *)
let test_registry_kind_clash () =
  let reg = Registry.create () in
  let c = Registry.counter reg "wal.flushes" in
  Registry.incr c;
  let window_clash =
    Invalid_argument
      "Registry: \"wal.flushes\" already registered as a counter, wanted a \
       window"
  in
  Alcotest.check_raises "find_window on a counter name" window_clash
    (fun () -> ignore (Registry.find_window reg "wal.flushes"));
  Alcotest.check_raises "observe_window on a counter name" window_clash
    (fun () -> Registry.observe_window reg "wal.flushes" 3);
  Alcotest.check_raises "window registration over a counter" window_clash
    (fun () -> ignore (Registry.window reg "wal.flushes"));
  Alcotest.check_raises "gauge registration over a counter"
    (Invalid_argument
       "Registry: \"wal.flushes\" already registered as a counter, wanted a \
        gauge") (fun () -> Registry.gauge reg "wal.flushes" (fun () -> 0));
  (* absent names stay quiet: observation sites may fire before wiring *)
  Alcotest.(check bool) "missing window is None" true
    (Registry.find_window reg "not.there" = None);
  Registry.observe_window reg "not.there" 5;
  (* same-kind re-registration re-points the gauge (crash re-wiring) *)
  Registry.gauge reg "pool.dirty" (fun () -> 1);
  Registry.gauge reg "pool.dirty" (fun () -> 2);
  Alcotest.(check int) "gauge re-wired, not duplicated" 2
    (match List.assoc "pool.dirty" (Registry.snapshot reg) with
    | Registry.Int v -> v
    | _ -> Alcotest.fail "gauge kind")

(* --- signal hysteresis ---------------------------------------------- *)

let test_signal_hysteresis () =
  let v = ref 0.0 in
  let set = Signal.create_set () in
  Signal.register set ~name:"overload" ~raise_above:10.0 ~clear_below:5.0
    ~source:(fun () -> !v);
  let log = ref [] in
  Signal.subscribe set (fun s change -> log := (Signal.name s, change) :: !log);
  let drive values = List.iter (fun x -> v := x; ignore (Signal.eval set)) values in
  let s = Option.get (Signal.find set "overload") in
  (* noise below the raise threshold: never raises *)
  drive [ 0.0; 9.9; 6.0; 9.9 ];
  Alcotest.(check bool) "below raise: quiet" false (Signal.active s);
  (* raise once, then oscillate inside the dead band: no flapping *)
  drive [ 12.0; 7.0; 9.0; 5.1; 9.9; 6.0 ];
  Alcotest.(check bool) "raised" true (Signal.active s);
  Alcotest.(check int) "one flip despite noise" 1 (Signal.flips s);
  (* clear only at clear_below, stay clear inside the dead band *)
  drive [ 5.0; 6.0; 9.9 ];
  Alcotest.(check bool) "cleared" false (Signal.active s);
  Alcotest.(check int) "two flips total" 2 (Signal.flips s);
  drive [ 10.0 ];
  Alcotest.(check int) "re-raised at threshold" 3 (Signal.flips s);
  Alcotest.(check (list (pair string bool)))
    "subscriber saw exactly the transitions"
    [ ("overload", true); ("overload", false); ("overload", true) ]
    (List.rev_map (fun (n, c) -> (n, c = Signal.Raised)) !log);
  (* re-registering keeps state but swaps thresholds/source *)
  Signal.register set ~name:"overload" ~raise_above:100.0 ~clear_below:0.0
    ~source:(fun () -> 50.0);
  Alcotest.(check bool) "state survives re-register" true (Signal.active s);
  ignore (Signal.eval set);
  Alcotest.(check bool) "still active in new dead band" true (Signal.active s);
  Alcotest.check_raises "inverted thresholds"
    (Invalid_argument "Signal.register \"bad\": clear_below > raise_above")
    (fun () ->
      Signal.register set ~name:"bad" ~raise_above:1.0 ~clear_below:2.0
        ~source:(fun () -> 0.0))

(* --- online window vs offline Quantiles ----------------------------- *)

(* Simulate the sampler's cadence over a synthetic event stream and
   check the online window agrees with the offline sliding-window
   replay at every tick. Same Hist buckets on both sides, and the
   window's live coverage at tick [s] is exactly (s - slots*every, s],
   so agreement is exact, not just within a bucket. *)
let test_online_vs_offline () =
  let slots = 4 and every = 25 and total = 500 in
  let rng = Random.State.make [| 42 |] in
  let w = Window.create ~slots () in
  let obs = ref [] in
  let checked = ref 0 in
  for step = 1 to total do
    (* a bursty latency source: quiet baseline, occasional spikes *)
    if Random.State.int rng 3 = 0 then begin
      let v =
        if Random.State.int rng 10 = 0 then 200 + Random.State.int rng 200
        else Random.State.int rng 30
      in
      Window.observe w v;
      obs := (step, v) :: !obs
    end;
    if step mod every = 0 then begin
      let off =
        Quantiles.over_range ~from:(step - (slots * every)) ~upto:step
          (List.rev !obs)
      in
      Alcotest.(check int)
        (Printf.sprintf "count at step %d" step)
        off.Quantiles.count (Window.count w);
      List.iter
        (fun (p, offline) ->
          Alcotest.(check (float 1e-9))
            (Printf.sprintf "p%.0f at step %d" (p *. 100.) step)
            offline (Window.percentile w p))
        [
          (0.5, off.Quantiles.p50);
          (0.95, off.Quantiles.p95);
          (0.99, off.Quantiles.p99);
        ];
      incr checked;
      Window.rotate w
    end
  done;
  Alcotest.(check int) "compared at every tick" (total / every) !checked

(* offline series extraction matches the documented key semantics *)
let test_quantile_series () =
  let stamp step event = { Event.step; fiber = 1; fiber_name = "w"; event } in
  let events =
    [
      stamp 5 (Event.Txn_commit { txn = 1; latency = 10 });
      stamp 9 (Event.Txn_abort { txn = 2; latency = 30 });
      stamp 12 (Event.Latch_acquired { latch = "l"; mode = "X"; waited = 3 });
      stamp 15 (Event.Lock_acquired { owner = 1; target = "t"; mode = "S"; waited = 8 });
    ]
  in
  Alcotest.(check (list (pair int int)))
    "txn_latency = commits + aborts"
    [ (5, 10); (9, 30) ]
    (Quantiles.series Quantiles.Txn_latency events);
  Alcotest.(check (list (pair int int)))
    "fg_latency = commits only" [ (5, 10) ]
    (Quantiles.series Quantiles.Fg_latency events);
  Alcotest.(check (list (pair int int)))
    "lock_wait from acquisition" [ (15, 8) ]
    (Quantiles.series Quantiles.Lock_wait events)

(* --- engine integration: accounting + overload signal --------------- *)

let build_with_workload ~workers ~txns ~seed =
  let trace = Trace.create () in
  let flips = ref [] in
  let ctx = Engine.create ~seed ~page_capacity:256 ~trace () in
  Signal.subscribe ctx.Ctx.signals (fun s change ->
      flips := (Signal.name s, change) :: !flips);
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows:800 ~seed in
  Obs_sampler.install ctx ~every:40;
  let _ =
    if workers > 0 then
      Driver.spawn_workers ctx
        { Driver.default with seed; workers; txns_per_worker = txns }
        ~table:1
    else
      ref
        { Driver.committed = 0; aborted = 0; deadlocks = 0; unique_violations = 0 }
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check (list string)) "consistent" [] (Engine.consistency_errors ctx);
  (ctx, flips)

let test_per_build_accounting () =
  let ctx, _ = build_with_workload ~workers:3 ~txns:12 ~seed:11 in
  match Engine.build_progress ctx with
  | [ st ] ->
    let r = st.BS.resources in
    Alcotest.(check bool) "build did page writes" true (r.Resource.pages_written > 0);
    Alcotest.(check bool) "build wrote WAL" true (r.Resource.log_bytes > 0);
    Alcotest.(check bool) "sort compares charged" true (r.Resource.sort_compares > 0);
    (* phase costs partition the total: summing them gives the live total *)
    let summed = Resource.create () in
    List.iter (fun (_, c) -> Resource.add_into ~into:summed c) (BS.phase_costs st);
    Alcotest.(check int) "phase costs sum to total" r.Resource.sort_compares
      summed.Resource.sort_compares;
    Alcotest.(check int) "phase log bytes sum to total" r.Resource.log_bytes
      summed.Resource.log_bytes;
    (* the compares were spent in scan/merge, not attributed to ready *)
    let in_phases phases field =
      List.fold_left
        (fun acc (p, c) -> if List.mem p phases then acc + field c else acc)
        0 (BS.phase_costs st)
    in
    Alcotest.(check int) "compares land in scan+merge" r.Resource.sort_compares
      (in_phases [ BS.Scan; BS.Merge ] (fun c -> c.Resource.sort_compares))
  | l -> Alcotest.failf "expected 1 build status, got %d" (List.length l)

let overload_changes flips =
  List.rev
    (List.filter_map
       (fun (name, change) ->
         if name = "overload.fg_p99" then Some change else None)
       !flips)

let test_overload_hot_then_drain () =
  let ctx, flips = build_with_workload ~workers:4 ~txns:25 ~seed:7 in
  let raised = List.mem Signal.Raised (overload_changes flips) in
  Alcotest.(check bool) "hot traffic raises overload.fg_p99" true raised;
  (* traffic has stopped: keep ticking so the window drains and the
     signal clears through hysteresis, not by reset *)
  for _ = 1 to 12 do
    Obs_sampler.sample ctx
  done;
  let changes = overload_changes flips in
  Alcotest.(check bool) "drained window clears the signal" true
    (List.length changes >= 2
    && List.nth changes (List.length changes - 1) = Signal.Cleared);
  let s = Option.get (Signal.find ctx.Ctx.signals "overload.fg_p99") in
  Alcotest.(check bool) "inactive after drain" false (Signal.active s)

let test_overload_quiet () =
  let _, flips = build_with_workload ~workers:0 ~txns:0 ~seed:7 in
  Alcotest.(check (list (pair string bool))) "no overload without updaters" []
    (List.filter_map
       (fun (name, change) ->
         if name = "overload.fg_p99" then Some (name, change = Signal.Raised)
         else None)
       !flips)

(* sampler emission: window/signal keys appear once per batch *)
let test_sampler_emits_plane_keys () =
  let trace = Trace.create () in
  let samples = ref [] in
  Trace.add_sink trace ~name:"t" (fun (s : Event.stamped) ->
      match s.event with
      | Event.Sample { key; value } -> samples := (s.step, key, value) :: !samples
      | _ -> ());
  let ctx, _ =
    let ctx = Engine.create ~seed:3 ~page_capacity:256 ~trace () in
    (ctx, ())
  in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows:200 ~seed:3 in
  Obs_sampler.install ctx ~every:30;
  let _ =
    Driver.spawn_workers ctx
      { Driver.default with seed = 3; workers = 2; txns_per_worker = 8 }
      ~table:1
  in
  Sched.run ctx.Ctx.sched;
  let keys_at_last_batch =
    match !samples with
    | [] -> []
    | (last, _, _) :: _ ->
      List.filter_map
        (fun (s, k, _) -> if s = last then Some k else None)
        !samples
  in
  Alcotest.(check bool) "emits window p99" true
    (List.mem "window.fg.latency.p99" keys_at_last_batch);
  Alcotest.(check bool) "emits signal state" true
    (List.mem "signal.overload.fg_p99" keys_at_last_batch);
  Alcotest.(check bool) "emits rate series" true
    (List.mem "rate.txn_commits" keys_at_last_batch);
  let sorted = List.sort compare keys_at_last_batch in
  Alcotest.(check int) "no duplicate keys in one batch"
    (List.length sorted)
    (List.length (List.sort_uniq compare sorted))

let () =
  Alcotest.run "obs_plane"
    [
      ( "window",
        [
          Alcotest.test_case "basics" `Quick test_window_basics;
          QCheck_alcotest.to_alcotest qcheck_window;
        ] );
      ( "registry",
        [
          Alcotest.test_case "roundtrip" `Quick test_registry_roundtrip;
          Alcotest.test_case "kind clash" `Quick test_registry_kind_clash;
        ] );
      ("signal", [ Alcotest.test_case "hysteresis" `Quick test_signal_hysteresis ]);
      ( "quantiles",
        [
          Alcotest.test_case "online vs offline" `Quick test_online_vs_offline;
          Alcotest.test_case "series extraction" `Quick test_quantile_series;
        ] );
      ( "engine",
        [
          Alcotest.test_case "per-build accounting" `Quick test_per_build_accounting;
          Alcotest.test_case "overload raises then clears" `Quick
            test_overload_hot_then_drain;
          Alcotest.test_case "quiet stays quiet" `Quick test_overload_quiet;
          Alcotest.test_case "sampler plane keys" `Quick
            test_sampler_emits_plane_keys;
        ] );
    ]
