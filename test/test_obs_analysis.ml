(* Offline trace analysis: JSONL round-trip, epoch splitting, span
   reassembly, critical-path breakdowns, contention attribution and the
   invariant checker — the machinery behind `oib-trace`. *)

open Oib_core
module Sched = Oib_sim.Sched
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event
module Hist = Oib_obs.Hist
module Driver = Oib_workload.Driver
module TR = Oib_obs_analysis.Trace_reader
module Span_tree = Oib_obs_analysis.Span_tree
module Contention = Oib_obs_analysis.Contention
module Check = Oib_obs_analysis.Check

(* --- encode -> parse round trip, every variant, hostile strings --- *)

(* every byte class the escaper special-cases: quote, backslash, the
   named control escapes, other control bytes, and high (UTF-8) bytes *)
let nasty = "q\"b\\nl\ntb\tcr\rbs\bff\012nul-ish\001hi\xc3\xa9"

let all_variants =
  [
    Event.Fiber_spawn { fiber = 3; name = nasty };
    Event.Latch_wait { latch = nasty; mode = "X"; holders = nasty };
    Event.Latch_acquired { latch = nasty; mode = "S"; waited = 7 };
    Event.Latch_released { latch = "root"; mode = "X" };
    Event.Lock_wait
      { owner = 4; target = nasty; mode = "IX"; blockers = "1,2,1000010" };
    Event.Lock_acquired { owner = 4; target = nasty; mode = "IX"; waited = 9 };
    Event.Lock_denied
      { owner = 1000010; target = "table:1"; mode = "S"; blockers = nasty };
    Event.Lock_released_all { owner = 1000010 };
    Event.Page_read { page = 42 };
    Event.Page_write { page = 0 };
    Event.Log_append { lsn = 17; kind = nasty; bytes = 128 };
    Event.Log_flush { upto = 99 };
    Event.Txn_begin { txn = 8 };
    Event.Txn_commit { txn = 8; latency = 12 };
    Event.Txn_abort { txn = 9; latency = 0 };
    Event.Txn_rollback_step { txn = 9; lsn = 5 };
    Event.Ib_phase { index = 10; phase = "scan" };
    Event.Ib_checkpoint { index = 10; stage = nasty };
    Event.Sidefile_append { sidefile = 10; insert = false; pos = 31 };
    Event.Sidefile_drained { sidefile = 10; from_pos = 0; upto = 31 };
    Event.Checkpoint { scope = nasty };
    (* [step] payload must not collide with the stamp's "step" key *)
    Event.Recovery_step { step = nasty; detail = nasty };
    Event.Crash { reason = nasty };
    Event.Span_begin { span = 5; parent = 2; cat = "lock"; name = nasty };
    Event.Span_end { span = 5 };
    Event.Sample { key = nasty; value = -3 };
    Event.Prof_sample
      {
        fiber = 2;
        fname = "worker-#";
        state = "latch";
        path = "txn:txn-#;latch:page-#";
        resource = nasty;
        blocker = "ib";
      };
    Event.Epoch { label = nasty };
  ]

let test_roundtrip () =
  (* the list above must cover the whole type: one distinct kind each *)
  let kinds = List.sort_uniq compare (List.map Event.kind all_variants) in
  Alcotest.(check int) "all kinds covered" (List.length all_variants)
    (List.length kinds);
  List.iter
    (fun event ->
      let stamped =
        { Event.step = 123; fiber = 2; fiber_name = nasty; event }
      in
      let line = Event.to_json stamped in
      match TR.parse_line line with
      | Error msg ->
        Alcotest.fail
          (Printf.sprintf "%s failed to decode: %s (%s)" (Event.kind event)
             msg line)
      | Ok back ->
        Alcotest.(check bool)
          (Event.kind event ^ " survives the round trip")
          true (back = stamped))
    all_variants

let test_reader_collects_errors () =
  let events, errors =
    TR.of_lines
      [
        Event.to_json
          { Event.step = 1; fiber = 0; fiber_name = "main";
            event = Event.Page_read { page = 1 } };
        "";
        "not json at all";
        "{\"step\":2,\"kind\":\"no.such.kind\",\"fiber\":0,\"fiber_name\":\"m\"}";
      ]
  in
  Alcotest.(check int) "good lines decoded" 1 (List.length events);
  Alcotest.(check int) "bad lines collected, blank skipped" 2
    (List.length errors)

(* --- Hist.merge --- *)

let hist_of bounds samples =
  let h = Hist.create ~bounds () in
  List.iter (Hist.observe h) samples;
  h

let test_hist_merge_properties () =
  let gen = QCheck.(pair (small_list small_nat) (small_list small_nat)) in
  let prop (xs, ys) =
    let bounds = Hist.linear_bounds ~limit:100 in
    let a = hist_of bounds xs and b = hist_of bounds ys in
    let m = Hist.merge a b in
    let all = xs @ ys in
    Hist.count m = List.length all
    && Hist.total m = List.fold_left ( + ) 0 all
    && (all = []
       || Hist.min_value m = List.fold_left min max_int all
          && Hist.max_value m = List.fold_left max 0 all
          && Hist.percentile m 0.5 >= float_of_int (Hist.min_value m)
          && Hist.percentile m 0.5 <= float_of_int (Hist.max_value m)
          && Hist.percentile m 0.5 <= Hist.percentile m 0.95
          && Hist.percentile m 0.95 <= Hist.percentile m 0.99)
    (* inputs must be untouched *)
    && Hist.count a = List.length xs
    && Hist.count b = List.length ys
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~count:200 ~name:"Hist.merge preserves stats" gen prop)

let test_hist_merge_bounds_mismatch () =
  let a = Hist.create ~bounds:[| 1; 2; 4 |] () in
  let b = Hist.create ~bounds:[| 1; 2; 8 |] () in
  Alcotest.check_raises "bounds mismatch rejected"
    (Invalid_argument "Hist.merge: bounds differ") (fun () ->
      ignore (Hist.merge a b));
  (* merge with a same-bounds empty histogram is the identity on stats *)
  let h = hist_of [| 1; 2; 4 |] [ 0; 3; 9 ] in
  let e = Hist.create ~bounds:[| 1; 2; 4 |] () in
  let m = Hist.merge h e in
  Alcotest.(check int) "count" (Hist.count h) (Hist.count m);
  Alcotest.(check int) "total" (Hist.total h) (Hist.total m);
  Alcotest.(check int) "max" (Hist.max_value h) (Hist.max_value m)

(* --- captured builds: decode cleanly, pass the checker --- *)

let capture ?(sample_every = 0) alg ~seed ~rows ~workers ~txns =
  let trace = Trace.create () in
  let buf = Buffer.create 4096 in
  Trace.add_jsonl_buffer_sink trace ~name:"capture" buf;
  Trace.set_on_dump trace (fun _ -> ());
  let ctx = Engine.create ~seed ~page_capacity:512 ~trace () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows ~seed in
  if sample_every > 0 then Obs_sampler.install ctx ~every:sample_every;
  let _ =
    Driver.spawn_workers ctx
      { Driver.default with seed; workers; txns_per_worker = txns }
      ~table:1
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config alg) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check (list string)) "oracle clean" []
    (Engine.consistency_errors ctx);
  let events, errors = TR.of_string (Buffer.contents buf) in
  Alcotest.(check int) "no undecodable lines" 0 (List.length errors);
  events

let test_check_passes_on_builds () =
  List.iter
    (fun (alg, seed, rows, workers, txns) ->
      let events = capture alg ~seed ~rows ~workers ~txns in
      Alcotest.(check bool) "trace is nonempty" true (events <> []);
      Alcotest.(check int) "single epoch" 1 (List.length (TR.epochs events));
      match Check.run events with
      | [] -> ()
      | vs ->
        List.iter (fun v -> Format.eprintf "%a@." Check.pp_violation v) vs;
        Alcotest.fail
          (Printf.sprintf "checker found %d violations" (List.length vs)))
    [ (Ib.Nsf, 5, 400, 4, 12); (Ib.Sf, 7, 300, 3, 10) ]

(* --- per-transaction critical-path breakdowns (acceptance) --- *)

let test_txn_breakdowns_sum () =
  let events = capture Ib.Nsf ~seed:5 ~rows:400 ~workers:4 ~txns:12 in
  let tree = Span_tree.build events in
  let bds = Span_tree.txn_breakdowns tree in
  Alcotest.(check bool) "breakdowns exist" true (bds <> []);
  List.iter
    (fun (b : Span_tree.breakdown) ->
      Alcotest.(check string) "txn span" "txn" b.Span_tree.b_span.Span_tree.cat;
      Alcotest.(check bool) "compute nonnegative" true (b.Span_tree.compute >= 0);
      List.iter
        (fun (cat, steps) ->
          Alcotest.(check bool) (cat ^ " part nonnegative") true (steps >= 0))
        b.Span_tree.parts;
      let parts_sum =
        List.fold_left (fun acc (_, s) -> acc + s) 0 b.Span_tree.parts
      in
      (* parts + compute account for the span's whole duration, exactly *)
      Alcotest.(check int) "parts + compute = total" b.Span_tree.total
        (parts_sum + b.Span_tree.compute))
    bds;
  (* somebody actually waited: lock time shows up in at least one path *)
  Alcotest.(check bool) "some txn charged lock time" true
    (List.exists
       (fun (b : Span_tree.breakdown) ->
         match List.assoc_opt "lock" b.Span_tree.parts with
         | Some s -> s > 0
         | None -> false)
       bds)

(* --- contention attribution (acceptance: the IB shows up) --- *)

let test_contention_blames_ib () =
  (* NSF quiesce takes a table S lock against updater IX locks, so the
     builder deterministically appears as a blocker *)
  let events = capture Ib.Nsf ~seed:5 ~rows:400 ~workers:4 ~txns:12 in
  let waits = Contention.waits events in
  Alcotest.(check bool) "waits reconstructed" true (waits <> []);
  let end_step = TR.last_step events in
  let targets = Contention.by_target ~end_step waits in
  Alcotest.(check bool) "per-target rows" true (targets <> []);
  let rows = Contention.blockers ~end_step waits in
  Alcotest.(check bool) "ib attributed as blocker" true
    (List.exists (fun (r : Contention.blocker_row) -> r.Contention.b_is_ib) rows);
  (* and the builder itself was made to wait by the updaters *)
  Alcotest.(check bool) "ib also waited" true
    (List.exists
       (fun (w : Contention.wait) -> Contention.is_ib_owner w.Contention.w_owner)
       waits)

let test_owner_labels () =
  Alcotest.(check string) "txn" "txn:17" (Contention.owner_label 17);
  Alcotest.(check string) "ib" "ib:10" (Contention.owner_label 1_000_010);
  Alcotest.(check string) "ib-offline" "ib-offline:2"
    (Contention.owner_label 1_250_002);
  Alcotest.(check string) "ib-gc" "ib-gc:10" (Contention.owner_label 1_500_010);
  Alcotest.(check (list int)) "blockers field" [ 1; 2; 1000010 ]
    (Contention.parse_blockers "1,2,1000010");
  Alcotest.(check (list int)) "empty blockers" [] (Contention.parse_blockers "")

(* --- the sampler's time series --- *)

let test_sampler_series () =
  let events =
    capture ~sample_every:50 Ib.Sf ~seed:7 ~rows:300 ~workers:3 ~txns:10
  in
  let samples =
    List.filter_map
      (fun (s : Event.stamped) ->
        match s.Event.event with
        | Event.Sample { key; value } -> Some (s.Event.step, key, value)
        | _ -> None)
      events
  in
  Alcotest.(check bool) "samples emitted" true (samples <> []);
  List.iter
    (fun (step, _, _) ->
      Alcotest.(check int) "stamped on the period" 0 (step mod 50))
    samples;
  let series key =
    List.filter_map
      (fun (step, k, v) -> if k = key then Some (step, v) else None)
      samples
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " sampled") true (series key <> []))
    [
      "metrics.txn_commits";
      "metrics.page_reads";
      "build.10.keys_processed";
      "build.10.backlog";
      "build.10.phase";
    ];
  (* counters and build progress only ever move forward *)
  let rec nondecreasing = function
    | (_, a) :: ((_, b) :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " nondecreasing") true
        (nondecreasing (series key)))
    [ "metrics.txn_commits"; "build.10.keys_processed"; "build.10.phase" ]

(* --- the checker catches synthetic corruption --- *)

let at ?(fiber = 1) ?(fiber_name = "w") step event =
  { Event.step; fiber; fiber_name; event }

let expect_violation name events needle =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  match Check.run events with
  | [] -> Alcotest.fail (name ^ ": expected a violation, got none")
  | vs ->
    Alcotest.(check bool)
      (name ^ " mentions " ^ needle)
      true
      (List.exists (fun (v : Check.violation) -> contains v.Check.v_what needle) vs)

let test_check_catches_corruption () =
  let wait ~owner ~target step =
    at step (Event.Lock_wait { owner; target; mode = "X"; blockers = "2" })
  in
  let acq ~owner ~target ~waited step =
    at step (Event.Lock_acquired { owner; target; mode = "X"; waited })
  in
  expect_violation "unmatched wait"
    [ wait ~owner:1 ~target:"row:1:5" 3 ]
    "never granted";
  expect_violation "wait/acquire miscount"
    [ wait ~owner:1 ~target:"row:1:5" 3; acq ~owner:1 ~target:"row:1:5" ~waited:2 9 ]
    "wait mismatch";
  expect_violation "acquire without wait"
    [ acq ~owner:1 ~target:"row:1:5" ~waited:0 4 ]
    "without wait";
  expect_violation "phase regression"
    [
      at 1 (Event.Ib_phase { index = 10; phase = "scan" });
      at 2 (Event.Ib_phase { index = 10; phase = "quiesce" });
    ]
    "regression";
  expect_violation "span end without begin"
    [ at 5 (Event.Span_end { span = 3 }) ]
    "not open";
  expect_violation "span left open"
    [ at 5 (Event.Span_begin { span = 3; parent = 0; cat = "txn"; name = "t" }) ]
    "still open";
  expect_violation "orphan parent"
    [ at 5 (Event.Span_begin { span = 3; parent = 9; cat = "txn"; name = "t" });
      at 6 (Event.Span_end { span = 3 }) ]
    "not open";
  expect_violation "double commit"
    [
      at 1 (Event.Txn_begin { txn = 4 });
      at 2 (Event.Txn_commit { txn = 4; latency = 1 });
      at 3 (Event.Txn_commit { txn = 4; latency = 2 });
    ]
    "terminates twice";
  expect_violation "unannounced step reset"
    [ at 10 (Event.Page_read { page = 1 }); at 3 (Event.Page_read { page = 2 }) ]
    "step clock reset";
  (* the same reset is fine when a crash or a marker announces it *)
  Alcotest.(check (list Alcotest.reject)) "crash announces the reset" []
    (Check.run
       [
         at 10 (Event.Crash { reason = "power" });
         at 3 (Event.Page_read { page = 2 });
       ]);
  Alcotest.(check (list Alcotest.reject)) "marker announces the reset" []
    (Check.run
       [
         at 10 (Event.Page_read { page = 1 });
         at 0 (Event.Epoch { label = "restart" });
         at 3 (Event.Page_read { page = 2 });
       ]);
  (* a crashed epoch may leave waits and spans unresolved *)
  Alcotest.(check (list Alcotest.reject)) "crash excuses open state" []
    (Check.run
       [
         wait ~owner:1 ~target:"row:1:5" 3;
         at 4 (Event.Span_begin { span = 1; parent = 0; cat = "txn"; name = "t" });
         at 9 (Event.Crash { reason = "power" });
       ])

let () =
  Alcotest.run "obs_analysis"
    [
      ( "decode",
        [
          Alcotest.test_case "round trip, every variant" `Quick test_roundtrip;
          Alcotest.test_case "errors collected, not fatal" `Quick
            test_reader_collects_errors;
        ] );
      ( "hist-merge",
        [
          Alcotest.test_case "merge preserves stats (qcheck)" `Quick
            test_hist_merge_properties;
          Alcotest.test_case "bounds mismatch + identity" `Quick
            test_hist_merge_bounds_mismatch;
        ] );
      ( "check",
        [
          Alcotest.test_case "clean on real nsf + sf builds" `Quick
            test_check_passes_on_builds;
          Alcotest.test_case "catches synthetic corruption" `Quick
            test_check_catches_corruption;
        ] );
      ( "spans",
        [
          Alcotest.test_case "txn breakdowns sum exactly" `Quick
            test_txn_breakdowns_sum;
        ] );
      ( "contention",
        [
          Alcotest.test_case "ib attributed as blocker" `Quick
            test_contention_blames_ib;
          Alcotest.test_case "owner labels" `Quick test_owner_labels;
        ] );
      ( "sampler",
        [ Alcotest.test_case "time series keys + monotone" `Quick
            test_sampler_series ] );
    ]
