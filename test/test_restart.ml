(* Crash injection during online index builds: at any scheduler step, the
   system may die; after restart recovery, the interrupted build must be
   resumable from its checkpoints and the final index must be exactly
   consistent with the table. *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver

let test_cfg alg =
  {
    (Ib.default_config alg) with
    ckpt_every_pages = 8;
    ckpt_every_keys = 64;
    memory_keys = 64;
  }

let setup ~seed =
  let ctx = Engine.create ~seed ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

(* One full scenario: populate, run workload + build, crash at [crash_step],
   recover, resume the build (or start it if it never began), run more
   workload, verify. Returns the oracle errors and whether the index is
   Ready. *)
let crash_scenario ~alg ~seed ~crash_step =
  let ctx = setup ~seed in
  let _ = Driver.populate ctx ~table:1 ~rows:150 ~seed in
  let wcfg = { Driver.default with seed; workers = 3; txns_per_worker = 40 } in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (test_cfg alg) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.set_crash_trap ctx.Ctx.sched (fun steps -> steps >= crash_step);
  let crashed =
    match Sched.run ctx.Ctx.sched with
    | () -> false
    | exception Sched.Crashed -> true
  in
  (* random steal before the lights go out *)
  Oib_storage.Buffer_pool.flush_some ctx.Ctx.pool
    (Oib_util.Rng.create (seed + 7))
    0.5;
  let ctx' = Engine.crash ~seed:(seed + 1) ctx in
  (* second life *)
  ignore
    (Sched.spawn ctx'.Ctx.sched ~name:"ib-resume" (fun () ->
         Ib.resume_builds ctx' (test_cfg alg);
         (* if the crash predated the descriptor, build from scratch *)
         match Catalog.index ctx'.Ctx.catalog 10 with
         | _ -> ()
         | exception Invalid_argument _ ->
           Ib.build_index ctx' (test_cfg alg) ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  let wcfg' = { wcfg with seed = seed + 50; txns_per_worker = 15 } in
  let _ = Driver.spawn_workers ctx' wcfg' ~table:1 in
  Sched.run ctx'.Ctx.sched;
  let ready = (Catalog.index ctx'.Ctx.catalog 10).phase = Catalog.Ready in
  (Engine.consistency_errors ctx', ready, crashed)

let check_scenario ~alg ~seed ~crash_step =
  let errs, ready, _ = crash_scenario ~alg ~seed ~crash_step in
  Alcotest.(check (list string))
    (Printf.sprintf "oracle clean (alg=%s seed=%d step=%d)"
       (match alg with Ib.Nsf -> "nsf" | Ib.Sf -> "sf")
       seed crash_step)
    [] errs;
  Alcotest.(check bool) "index ready" true ready

(* measure how many steps a full run takes, to aim crash points at every
   stage *)
let full_run_steps alg =
  let ctx = setup ~seed:2 in
  let _ = Driver.populate ctx ~table:1 ~rows:150 ~seed:2 in
  let wcfg = { Driver.default with seed = 2; workers = 3; txns_per_worker = 40 } in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (test_cfg alg) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  Sched.steps ctx.Ctx.sched

let test_nsf_early_crash () = check_scenario ~alg:Ib.Nsf ~seed:2 ~crash_step:50

let test_nsf_mid_crash () =
  let steps = full_run_steps Ib.Nsf in
  check_scenario ~alg:Ib.Nsf ~seed:2 ~crash_step:(steps / 2)

let test_nsf_late_crash () =
  let steps = full_run_steps Ib.Nsf in
  check_scenario ~alg:Ib.Nsf ~seed:2 ~crash_step:(9 * steps / 10)

let test_sf_early_crash () = check_scenario ~alg:Ib.Sf ~seed:2 ~crash_step:50

let test_sf_mid_crash () =
  let steps = full_run_steps Ib.Sf in
  check_scenario ~alg:Ib.Sf ~seed:2 ~crash_step:(steps / 2)

let test_sf_late_crash () =
  let steps = full_run_steps Ib.Sf in
  check_scenario ~alg:Ib.Sf ~seed:2 ~crash_step:(19 * steps / 20)

let test_double_crash () =
  (* crash, recover, crash again immediately, recover, then finish *)
  let ctx = setup ~seed:5 in
  let _ = Driver.populate ctx ~table:1 ~rows:120 ~seed:5 in
  let wcfg = { Driver.default with seed = 5; workers = 2; txns_per_worker = 30 } in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (test_cfg Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.set_crash_trap ctx.Ctx.sched (fun steps -> steps >= 2000);
  (try Sched.run ctx.Ctx.sched with Sched.Crashed -> ());
  let ctx' = Engine.crash ctx in
  (* second life crashes very quickly too *)
  ignore
    (Sched.spawn ctx'.Ctx.sched ~name:"ib-resume" (fun () ->
         Ib.resume_builds ctx' (test_cfg Ib.Sf)));
  Sched.set_crash_trap ctx'.Ctx.sched (fun steps -> steps >= 300);
  (try Sched.run ctx'.Ctx.sched with Sched.Crashed -> ());
  let ctx'' = Engine.crash ctx' in
  ignore
    (Sched.spawn ctx''.Ctx.sched ~name:"ib-resume2" (fun () ->
         Ib.resume_builds ctx'' (test_cfg Ib.Sf);
         match Catalog.index ctx''.Ctx.catalog 10 with
         | _ -> ()
         | exception Invalid_argument _ ->
           Ib.build_index ctx'' (test_cfg Ib.Sf) ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx''.Ctx.sched;
  Alcotest.(check (list string)) "oracle clean after two crashes" []
    (Engine.consistency_errors ctx'');
  Alcotest.(check bool) "ready" true
    ((Catalog.index ctx''.Ctx.catalog 10).phase = Catalog.Ready)

let test_resume_does_not_rescan_everything () =
  (* the point of the restartable sort: after a crash late in the scan, the
     resumed build rescans only the tail *)
  let ctx = setup ~seed:3 in
  let _ = Driver.populate ctx ~table:1 ~rows:400 ~seed:3 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (test_cfg Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  (* let it scan a while: each page costs ~1 step (one yield per page) *)
  Sched.set_crash_trap ctx.Ctx.sched (fun steps -> steps >= 60);
  (try Sched.run ctx.Ctx.sched with Sched.Crashed -> ());
  let before = ctx.Ctx.metrics.sequential_reads in
  let ctx' = Engine.crash ctx in
  ignore
    (Sched.spawn ctx'.Ctx.sched ~name:"ib-resume" (fun () ->
         Ib.resume_builds ctx' (test_cfg Ib.Sf)));
  Sched.run ctx'.Ctx.sched;
  let rescan = ctx'.Ctx.metrics.sequential_reads - before in
  let total_pages =
    Oib_storage.Heap_file.page_count (Catalog.table ctx'.Ctx.catalog 1).heap
  in
  Alcotest.(check bool)
    (Printf.sprintf "rescanned %d of %d pages" rescan total_pages)
    true
    (rescan < total_pages);
  Alcotest.(check (list string)) "oracle clean" []
    (Engine.consistency_errors ctx')

(* Regression: after a crash mid-build the recovered engine's in-memory
   Build_status must already agree with the restored catalog phase —
   BEFORE any resume fiber runs. It used to stay empty (or claim Init)
   until resume_builds recreated it, so a post-recovery progress display
   disagreed with Catalog.set_phase's restored state. *)
let check_status_agrees alg =
  let ctx = setup ~seed:9 in
  let _ = Driver.populate ctx ~table:1 ~rows:200 ~seed:9 in
  let _ =
    Driver.spawn_workers ctx
      { Driver.default with seed = 9; workers = 3; txns_per_worker = 40 }
      ~table:1
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (test_cfg alg) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  (* crash once the build is demonstrably mid-flight (its durable
     progress record exists from admission on) *)
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"monitor" (fun () ->
         let continue = ref true in
         while !continue do
           (match Engine.build_progress ctx with
           | st :: _
             when Build_status.rank st.Build_status.phase
                  >= Build_status.rank Build_status.Scan
                  && st.Build_status.phase <> Build_status.Ready ->
             Sched.request_crash ctx.Ctx.sched;
             continue := false
           | _ -> ());
           Sched.yield ctx.Ctx.sched
         done));
  (match Sched.run ctx.Ctx.sched with
  | () -> Alcotest.fail "build finished before the monitor crashed it"
  | exception Sched.Crashed -> ());
  let ctx' = Engine.crash ctx in
  (* nothing resumed yet: the status must come from rehydration alone *)
  (match Ib.interrupted_builds ctx' with
  | [] -> Alcotest.fail "mid-flight crash left no interrupted build"
  | _ -> ());
  match Engine.build_progress ctx' with
  | [] -> Alcotest.fail "no Build_status after recovery"
  | sts ->
    List.iter
      (fun (st : Build_status.t) ->
        let info = Catalog.index ctx'.Ctx.catalog st.Build_status.index_id in
        let agrees =
          match (info.Catalog.phase, st.Build_status.phase) with
          | Catalog.Ready, Build_status.Ready -> true
          | Catalog.Nsf_building _, (Build_status.Scan | Build_status.Merge
                                    | Build_status.Insert) -> true
          | Catalog.Sf_building _, (Build_status.Scan | Build_status.Merge
                                   | Build_status.Bulk | Build_status.Drain)
            -> true
          | _ -> false
        in
        Alcotest.(check bool)
          (Printf.sprintf "status phase %s consistent with catalog"
             (Build_status.phase_name st.Build_status.phase))
          true agrees)
      sts

let test_status_agrees_nsf () = check_status_agrees Ib.Nsf
let test_status_agrees_sf () = check_status_agrees Ib.Sf

let prop_crash_anywhere_nsf =
  QCheck.Test.make ~name:"NSF: crash anywhere, recover, finish" ~count:14
    QCheck.(pair small_nat (int_bound 99))
    (fun (seed, pct) ->
      let steps = 14000 in
      let crash_step = max 30 (steps * pct / 100) in
      let errs, ready, _ = crash_scenario ~alg:Ib.Nsf ~seed ~crash_step in
      errs = [] && ready)

let prop_crash_anywhere_sf =
  QCheck.Test.make ~name:"SF: crash anywhere, recover, finish" ~count:14
    QCheck.(pair small_nat (int_bound 99))
    (fun (seed, pct) ->
      let steps = 14000 in
      let crash_step = max 30 (steps * pct / 100) in
      let errs, ready, _ = crash_scenario ~alg:Ib.Sf ~seed ~crash_step in
      errs = [] && ready)

let () =
  Alcotest.run "restart"
    [
      ( "nsf",
        [
          Alcotest.test_case "early crash" `Quick test_nsf_early_crash;
          Alcotest.test_case "mid crash" `Quick test_nsf_mid_crash;
          Alcotest.test_case "late crash" `Quick test_nsf_late_crash;
        ] );
      ( "sf",
        [
          Alcotest.test_case "early crash" `Quick test_sf_early_crash;
          Alcotest.test_case "mid crash" `Quick test_sf_mid_crash;
          Alcotest.test_case "late crash" `Quick test_sf_late_crash;
        ] );
      ( "robustness",
        [
          Alcotest.test_case "double crash" `Quick test_double_crash;
          Alcotest.test_case "bounded rescan" `Quick
            test_resume_does_not_rescan_everything;
          Alcotest.test_case "status rehydrated (nsf)" `Quick
            test_status_agrees_nsf;
          Alcotest.test_case "status rehydrated (sf)" `Quick
            test_status_agrees_sf;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_crash_anywhere_nsf; prop_crash_anywhere_sf ] );
    ]
