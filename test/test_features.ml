(* Features around the core algorithms: range scans, gradual availability
   during an NSF build (paper footnote 3), media recovery (image copy +
   full-log redo, the recovery mode NSF's logging enables, §2.2.3), and the
   background pseudo-delete garbage collector (§2.2.4). *)

open Oib_core
open Oib_util
module Sched = Oib_sim.Sched
module Txn = Oib_txn.Txn_manager

let setup ?(seed = 9) () =
  let ctx = Engine.create ~seed ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

let must = function
  | Ok v -> v
  | Error _ -> Alcotest.fail "unexpected txn failure"

let load_keys ctx n =
  must
    (Engine.run_txn ctx (fun txn ->
         List.init n (fun i ->
             Table_ops.insert ctx txn ~table:1
               (Record.make [| Printf.sprintf "k%04d" i; string_of_int i |]))))

let build ctx ?(id = 10) ?(alg = Ib.Sf) ?(cfg = None) ?(unique = false) () =
  let cfg = Option.value cfg ~default:(Ib.default_config alg) in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = id; key_cols = [ 0 ]; unique }));
  Sched.run ctx.Ctx.sched

(* --- range scans --- *)

let test_range_lookup () =
  let ctx = setup () in
  let _ = load_keys ctx 200 in
  build ctx ();
  let hits =
    must
      (Engine.run_txn ctx (fun txn ->
           Table_ops.range_lookup ctx txn ~index:10 ~lo:"k0050" ~hi:"k0059" ()))
  in
  Alcotest.(check int) "ten keys" 10 (List.length hits);
  Alcotest.(check (list string)) "in key order"
    (List.init 10 (fun i -> Printf.sprintf "k%04d" (50 + i)))
    (List.map (fun (_, (r : Record.t)) -> r.cols.(0)) hits)

let test_range_open_bounds () =
  let ctx = setup () in
  let _ = load_keys ctx 50 in
  build ctx ();
  let all =
    must (Engine.run_txn ctx (fun txn -> Table_ops.range_lookup ctx txn ~index:10 ()))
  in
  Alcotest.(check int) "all" 50 (List.length all);
  let tail =
    must
      (Engine.run_txn ctx (fun txn ->
           Table_ops.range_lookup ctx txn ~index:10 ~lo:"k0045" ()))
  in
  Alcotest.(check int) "open high bound" 5 (List.length tail)

let test_range_skips_pseudo_deleted () =
  let ctx = setup () in
  let rids = load_keys ctx 20 in
  build ctx ();
  must (Engine.run_txn ctx (fun txn -> Table_ops.delete ctx txn ~table:1 (List.nth rids 5)));
  let hits =
    must
      (Engine.run_txn ctx (fun txn ->
           Table_ops.range_lookup ctx txn ~index:10 ~lo:"k0000" ~hi:"k0009" ()))
  in
  Alcotest.(check int) "tombstone invisible" 9 (List.length hits)

let prop_range_matches_filter =
  QCheck.Test.make ~name:"range scan equals filtered full scan" ~count:25
    QCheck.(pair small_nat (pair (int_bound 199) (int_bound 199)))
    (fun (seed, (a, b)) ->
      let lo = min a b and hi = max a b in
      let ctx = setup ~seed:(seed + 1) () in
      let _ = load_keys ctx 200 in
      build ctx ();
      let lo_s = Printf.sprintf "k%04d" lo and hi_s = Printf.sprintf "k%04d" hi in
      let got =
        must
          (Engine.run_txn ctx (fun txn ->
               Table_ops.range_lookup ctx txn ~index:10 ~lo:lo_s ~hi:hi_s ()))
      in
      List.length got = hi - lo + 1)

(* --- gradual availability (footnote 3) --- *)

let test_gradual_availability () =
  let ctx = setup () in
  let _ = load_keys ctx 1000 in
  let served = ref 0 and refused = ref 0 and wrong = ref [] in
  let cfg = { (Ib.default_config Ib.Nsf) with ckpt_every_keys = 100 } in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"reader" (fun () ->
         (* keep probing a low key while the build runs: refused at first,
            then served correctly once the builder's bound passes it *)
         let rec probing n =
           if n > 0 then begin
             (match
                Engine.run_txn ctx (fun txn ->
                    Table_ops.index_lookup ctx txn ~index:10 "k0007")
              with
             | Ok [ (_, r) ] ->
               incr served;
               if r.Record.cols.(0) <> "k0007" then wrong := "bad row" :: !wrong
             | Ok _ -> wrong := "wrong cardinality" :: !wrong
             | Error _ -> wrong := "txn error" :: !wrong
             | exception Invalid_argument _ -> incr refused);
             Sched.yield ctx.Ctx.sched;
             probing (n - 1)
           end
         in
         probing 400));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check (list string)) "no wrong answers" [] !wrong;
  Alcotest.(check bool)
    (Printf.sprintf "refused early (%d), served later (%d)" !refused !served)
    true
    (!refused > 0 && !served > 0);
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx)

let test_unavailable_above_bound () =
  let ctx = setup () in
  let _ = load_keys ctx 1000 in
  let high_refused = ref false in
  let cfg = { (Ib.default_config Ib.Nsf) with ckpt_every_keys = 100 } in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"reader" (fun () ->
         for _ = 1 to 50 do
           (* a key near the top must be refused while the builder has only
              reached the middle *)
           (match
              Engine.run_txn ctx (fun txn ->
                  Table_ops.index_lookup ctx txn ~index:10 "k0990")
            with
           | Ok _ -> ()
           | Error _ -> ()
           | exception Invalid_argument _ -> high_refused := true);
           Sched.yield ctx.Ctx.sched
         done));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool) "high keys refused during build" true !high_refused

(* --- media recovery --- *)

let test_media_recovery_roundtrip () =
  let ctx = setup () in
  let _ = load_keys ctx 300 in
  build ctx ();
  let b = Engine.backup ctx in
  (* post-backup activity, all logged *)
  let rids =
    must
      (Engine.run_txn ctx (fun txn ->
           List.init 50 (fun i ->
               Table_ops.insert ctx txn ~table:1
                 (Record.make [| Printf.sprintf "m%03d" i; "post" |]))))
  in
  must (Engine.run_txn ctx (fun txn -> Table_ops.delete ctx txn ~table:1 (List.hd rids)));
  (* the data disk dies; restore the image and redo the log *)
  let ctx' = Engine.media_restore ctx b in
  Alcotest.(check (list string)) "oracle clean after media recovery" []
    (Engine.consistency_errors ctx');
  let hits =
    must
      (Engine.run_txn ctx' (fun txn ->
           Table_ops.index_lookup ctx' txn ~index:10 "m011"))
  in
  Alcotest.(check int) "post-backup insert recovered via index" 1
    (List.length hits);
  let gone =
    must
      (Engine.run_txn ctx' (fun txn ->
           Table_ops.index_lookup ctx' txn ~index:10 "m000"))
  in
  Alcotest.(check int) "post-backup delete recovered" 0 (List.length gone)

let test_media_recovery_covers_nsf_build () =
  (* the build itself happens after the backup: the index must be
     recoverable purely from the log — NSF's reason for logging IB inserts *)
  let ctx = setup () in
  let _ = load_keys ctx 300 in
  let b = Engine.backup ctx in
  build ctx ~alg:Ib.Nsf ();
  let ctx' = Engine.media_restore ctx b in
  Alcotest.(check (list string)) "index rebuilt from the log alone" []
    (Engine.consistency_errors ctx');
  Alcotest.(check int) "all entries" 300
    (Oib_btree.Btree.present_count (Catalog.index ctx'.Ctx.catalog 10).tree)

(* --- background gc daemon --- *)

let test_gc_daemon_collects () =
  let ctx = setup () in
  let rids = load_keys ctx 200 in
  build ctx ();
  let stop, collected = Ib.spawn_gc_daemon ctx ~index_id:10 ~every:5 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"deleter" (fun () ->
         List.iteri
           (fun i rid ->
             if i mod 2 = 0 then
               (match
                  Engine.run_txn ctx (fun txn ->
                      Table_ops.delete ctx txn ~table:1 rid)
                with
               | Ok () | Error _ -> ());
             Sched.yield ctx.Ctx.sched)
           rids;
         (* give the daemon a few more sweeps, then stop it *)
         for _ = 1 to 30 do
           Sched.yield ctx.Ctx.sched
         done;
         stop ()));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool)
    (Printf.sprintf "daemon collected %d tombstones" !collected)
    true (!collected > 0);
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx)

(* --- offline baseline (§1) --- *)

let test_offline_build_stalls_updaters () =
  let ctx = setup () in
  let _ = load_keys ctx 300 in
  let during = ref (-1) in
  let done_txns = ref 0 in
  for w = 0 to 2 do
    ignore
      (Sched.spawn ctx.Ctx.sched ~name:(Printf.sprintf "w%d" w) (fun () ->
           for i = 0 to 9 do
             (match
                Engine.run_txn ctx (fun txn ->
                    ignore
                      (Table_ops.insert ctx txn ~table:1
                         (Record.make [| Printf.sprintf "w%d-%d" w i; "p" |])))
              with
             | Ok () -> incr done_txns
             | Error _ -> ());
             Sched.yield ctx.Ctx.sched
           done))
  done;
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index_offline ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false };
         during := !done_txns));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx);
  Alcotest.(check bool)
    (Printf.sprintf "at most the in-flight txns finished during the build (%d)"
       !during)
    true
    (!during <= 3);
  Alcotest.(check int) "all eventually commit" 30 !done_txns

(* --- log truncation (footnote 8) --- *)

let test_truncate_log_reclaims_and_recovers () =
  let ctx = setup () in
  let rids = load_keys ctx 400 in
  build ctx ();
  must
    (Engine.run_txn ctx (fun txn ->
         Table_ops.delete ctx txn ~table:1 (List.hd rids)));
  let before = Oib_wal.Log_manager.durable_bytes ctx.Ctx.log in
  let reclaimed = Engine.truncate_log ctx in
  Alcotest.(check bool)
    (Printf.sprintf "reclaimed %d of %d bytes" reclaimed before)
    true
    (reclaimed > before / 2);
  (* normal operation and crash recovery both still work *)
  must
    (Engine.run_txn ctx (fun txn ->
         ignore (Table_ops.insert ctx txn ~table:1 (Record.make [| "post"; "t" |]))));
  let ctx' = Engine.crash ctx in
  Alcotest.(check (list string)) "recovery after truncation" []
    (Engine.consistency_errors ctx');
  let hits =
    must
      (Engine.run_txn ctx' (fun txn ->
           Table_ops.index_lookup ctx' txn ~index:10 "post"))
  in
  Alcotest.(check int) "post-truncation commit survives" 1 (List.length hits)

let test_truncate_log_respects_active_txn () =
  let ctx = setup () in
  let _ = load_keys ctx 50 in
  let txn = Txn.begin_txn ctx.Ctx.txns in
  ignore (Table_ops.insert ctx txn ~table:1 (Record.make [| "open"; "x" |]));
  ignore (Engine.truncate_log ctx);
  (* the open transaction's chain must have been retained: roll it back *)
  Table_ops.rollback ctx txn;
  let all =
    Oib_storage.Heap_file.all_records (Catalog.table ctx.Ctx.catalog 1).heap
  in
  Alcotest.(check int) "rollback still worked" 50 (List.length all)

let test_truncate_log_respects_build_in_progress () =
  let ctx = setup () in
  let _ = load_keys ctx 800 in
  let cfg = { (Ib.default_config Ib.Sf) with ckpt_every_pages = 8 } in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  (* truncate mid-build, then crash: the retained log must still rebuild
     the side-file and resume the build *)
  Sched.set_crash_trap ctx.Ctx.sched (fun steps ->
      if steps = 40 then ignore (Engine.truncate_log ctx);
      steps >= 80);
  (try Sched.run ctx.Ctx.sched with Sched.Crashed -> ());
  let ctx' = Engine.crash ctx in
  ignore
    (Sched.spawn ctx'.Ctx.sched ~name:"resume" (fun () ->
         Ib.resume_builds ctx' cfg;
         match Catalog.index ctx'.Ctx.catalog 10 with
         | _ -> ()
         | exception Invalid_argument _ ->
           Ib.build_index ctx' cfg ~table:1
             { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx'.Ctx.sched;
  Alcotest.(check (list string)) "oracle clean" [] (Engine.consistency_errors ctx');
  Alcotest.(check bool) "ready" true
    ((Catalog.index ctx'.Ctx.catalog 10).phase = Catalog.Ready)

let () =
  Alcotest.run "features"
    [
      ( "range",
        [
          Alcotest.test_case "bounded range" `Quick test_range_lookup;
          Alcotest.test_case "open bounds" `Quick test_range_open_bounds;
          Alcotest.test_case "skips tombstones" `Quick
            test_range_skips_pseudo_deleted;
        ] );
      ( "gradual-availability",
        [
          Alcotest.test_case "serves below the bound" `Quick
            test_gradual_availability;
          Alcotest.test_case "refuses above the bound" `Quick
            test_unavailable_above_bound;
        ] );
      ( "media-recovery",
        [
          Alcotest.test_case "image + log redo" `Quick
            test_media_recovery_roundtrip;
          Alcotest.test_case "covers an NSF build" `Quick
            test_media_recovery_covers_nsf_build;
        ] );
      ( "gc-daemon",
        [ Alcotest.test_case "background collection" `Quick test_gc_daemon_collects ]
      );
      ( "offline-baseline",
        [
          Alcotest.test_case "full quiesce stalls updaters" `Quick
            test_offline_build_stalls_updaters;
        ] );
      ( "log-truncation",
        [
          Alcotest.test_case "reclaims and recovers" `Quick
            test_truncate_log_reclaims_and_recovers;
          Alcotest.test_case "respects active txn" `Quick
            test_truncate_log_respects_active_txn;
          Alcotest.test_case "respects build in progress" `Quick
            test_truncate_log_respects_build_in_progress;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_range_matches_filter ] );
    ]
