(* Observability: trace events, flight recorder, histograms, build
   progress. *)

open Oib_core
module Sched = Oib_sim.Sched
module Metrics = Oib_sim.Metrics
module Latch = Oib_sim.Latch
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event
module Hist = Oib_obs.Hist
module FR = Oib_obs.Flight_recorder
module Stats = Oib_util.Stats
module Driver = Oib_workload.Driver
module BS = Build_status

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let quiet_trace () =
  let trace = Trace.create () in
  ignore (Trace.attach_recorder trace ~capacity:512);
  Trace.set_on_dump trace (fun _ -> ());
  trace

let setup ?(seed = 3) ?trace () =
  let ctx = Engine.create ~seed ~page_capacity:512 ?trace () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

let check_clean ctx =
  Alcotest.(check (list string)) "oracle clean" []
    (Engine.consistency_errors ctx)

(* --- histograms --- *)

let test_hist_matches_stats () =
  (* width-1 buckets over ints <= limit: percentiles must agree exactly
     with Stats.percentile's interpolated rank *)
  let samples = [ 3; 1; 4; 1; 5; 9; 2; 6; 5; 3; 5; 8; 97; 2; 33; 0; 7; 41 ] in
  let h = Hist.create ~bounds:(Hist.linear_bounds ~limit:100) () in
  List.iter (Hist.observe h) samples;
  let s = Stats.summarize (List.map float_of_int samples) in
  Alcotest.(check int) "count" (List.length samples) (Hist.count h);
  Alcotest.(check (float 1e-9)) "p50" s.Stats.p50 (Hist.percentile h 0.5);
  Alcotest.(check (float 1e-9)) "p95" s.Stats.p95 (Hist.percentile h 0.95);
  Alcotest.(check (float 1e-9)) "p99" s.Stats.p99 (Hist.percentile h 0.99);
  Alcotest.(check (float 1e-9)) "mean" s.Stats.mean (Hist.mean h);
  Alcotest.(check int) "min" (int_of_float s.Stats.min) (Hist.min_value h);
  Alcotest.(check int) "max" (int_of_float s.Stats.max) (Hist.max_value h)

let test_hist_overflow_and_merge () =
  let h = Hist.create ~bounds:[| 1; 2; 4 |] () in
  List.iter (Hist.observe h) [ 0; 1; 3; 1000 ];
  Alcotest.(check int) "count" 4 (Hist.count h);
  Alcotest.(check int) "max tracked" 1000 (Hist.max_value h);
  (* the overflow bucket reports under max_int *)
  Alcotest.(check bool) "overflow bucket" true
    (List.mem_assoc max_int (Hist.buckets h));
  let h2 = Hist.create ~bounds:[| 1; 2; 4 |] () in
  Hist.observe h2 2;
  Hist.merge_into ~into:h h2;
  Alcotest.(check int) "merged count" 5 (Hist.count h);
  (* machine-readable form mentions the quantiles *)
  let j = Hist.to_json h in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json has " ^ needle) true
        (contains j needle))
    [ "\"count\":5"; "\"p50\""; "\"p95\""; "\"p99\"" ]

(* --- flight recorder --- *)

let stamped i =
  { Event.step = i; fiber = 0; fiber_name = "f";
    event = Event.Checkpoint { scope = string_of_int i } }

let test_ring_wraps () =
  let r = FR.create ~capacity:4 in
  for i = 1 to 10 do
    FR.record r (stamped i)
  done;
  Alcotest.(check int) "total" 10 (FR.total r);
  Alcotest.(check int) "size" 4 (FR.size r);
  Alcotest.(check (list int)) "last 4, oldest first" [ 7; 8; 9; 10 ]
    (List.map (fun (s : Event.stamped) -> s.Event.step) (FR.contents r));
  let d = FR.dump ~reason:"test" r in
  Alcotest.(check bool) "dump mentions reason" true
    (contains d "test");
  Alcotest.(check bool) "dump mentions truncation" true
    (contains d "last 4 of 10")

(* --- event ordering under the scheduler --- *)

let test_event_order_matches_steps () =
  let trace = quiet_trace () in
  let seen = ref [] in
  Trace.add_sink trace ~name:"collect" (fun s -> seen := s :: !seen);
  let ctx = setup ~seed:5 ~trace () in
  let _ = Driver.populate ctx ~table:1 ~rows:120 ~seed:5 in
  let wcfg = { Driver.default with seed = 5; workers = 3; txns_per_worker = 8 } in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  let events = List.rev !seen in
  Alcotest.(check bool) "events were emitted" true (List.length events > 100);
  (* the stamp is the scheduler's step clock: nondecreasing in emission
     order, and bounded by the final step count *)
  let rec nondecreasing = function
    | (a : Event.stamped) :: (b :: _ as rest) ->
      a.Event.step <= b.Event.step && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "steps nondecreasing" true (nondecreasing events);
  let final = Sched.steps ctx.Ctx.sched in
  Alcotest.(check bool) "steps bounded" true
    (List.for_all (fun (s : Event.stamped) -> s.Event.step <= final) events);
  (* every in-fiber event carries the fiber's registered name *)
  let names = [ "main"; "ib"; "worker-0"; "worker-1"; "worker-2" ] in
  Alcotest.(check bool) "fiber names known" true
    (List.for_all
       (fun (s : Event.stamped) -> List.mem s.Event.fiber_name names)
       events);
  (* latency histograms were fed during the run *)
  List.iter
    (fun h ->
      match Trace.find_hist trace h with
      | Some hist -> Alcotest.(check bool) (h ^ " nonempty") true (Hist.count hist > 0)
      | None -> Alcotest.fail (h ^ " missing"))
    [ "latch_wait"; "lock_wait"; "txn_latency"; "traversal_cost" ]

(* --- flight-recorder dump on deadlock --- *)

let test_deadlock_dumps_recorder () =
  let trace = quiet_trace () in
  let ctx = setup ~seed:11 ~trace () in
  let _ = Driver.populate ctx ~table:1 ~rows:150 ~seed:11 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  (* two fibers that wait for the build to finish, then latch two pages in
     opposite orders: a guaranteed deadlock *)
  let l1 = Latch.create ~name:"res-a" ctx.Ctx.sched ctx.Ctx.metrics in
  let l2 = Latch.create ~name:"res-b" ctx.Ctx.sched ctx.Ctx.metrics in
  let await_ready () =
    while
      (match Catalog.index ctx.Ctx.catalog 10 with
      | info -> info.Catalog.phase <> Catalog.Ready
      | exception Invalid_argument _ -> true)
    do
      Sched.yield ctx.Ctx.sched
    done
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"grabber-1" (fun () ->
         await_ready ();
         Latch.acquire l1 Latch.X;
         Sched.yield ctx.Ctx.sched;
         Latch.acquire l2 Latch.X));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"grabber-2" (fun () ->
         await_ready ();
         Latch.acquire l2 Latch.X;
         Sched.yield ctx.Ctx.sched;
         Latch.acquire l1 Latch.X));
  (match Sched.run ctx.Ctx.sched with
  | () -> Alcotest.fail "expected deadlock"
  | exception Sched.Deadlock _ -> ());
  match Trace.last_dump trace with
  | None -> Alcotest.fail "no flight-recorder dump"
  | Some d ->
    List.iter
      (fun needle ->
        Alcotest.(check bool) ("dump has " ^ needle) true
          (contains d needle))
      [
        (* the IB's last phase transition survives in the ring *)
        "ib.phase";
        "phase=ready";
        (* the blocking latch waits, with fiber names *)
        "latch.wait";
        "grabber-1";
        "grabber-2";
        "deadlock";
        (* stamps carry step numbers *)
        "step=";
      ]

(* --- build progress --- *)

let rec ranks_nondecreasing = function
  | a :: (b :: _ as rest) -> a <= b && ranks_nondecreasing rest
  | _ -> true

let check_history (st : BS.t) ~expect_phases =
  let hist = BS.history st in
  (match hist with
  | (BS.Init, 0) :: _ -> ()
  | _ -> Alcotest.fail "history must start at (Init, 0)");
  Alcotest.(check bool) "phase ranks nondecreasing" true
    (ranks_nondecreasing (List.map (fun (p, _) -> BS.rank p) hist));
  Alcotest.(check bool) "steps nondecreasing" true
    (ranks_nondecreasing (List.map snd hist));
  List.iter
    (fun p ->
      Alcotest.(check bool)
        ("visited " ^ BS.phase_name p)
        true
        (List.mem_assoc p hist))
    expect_phases

let test_progress_nsf () =
  let trace = quiet_trace () in
  let ctx = setup ~seed:7 ~trace () in
  let rows = Array.length (Driver.populate ctx ~table:1 ~rows:300 ~seed:7) in
  let wcfg = { Driver.default with seed = 7; workers = 2; txns_per_worker = 10 } in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  (* a monitor polls the public API while the build runs; what it sees must
     only ever move forward *)
  let observed = ref [] in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"monitor" (fun () ->
         let continue = ref true in
         while !continue do
           (match Engine.build_progress ctx with
           | [ st ] ->
             observed := BS.rank st.BS.phase :: !observed;
             if st.BS.phase = BS.Ready then continue := false
           | _ -> ());
           Sched.yield ctx.Ctx.sched
         done));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  Alcotest.(check bool) "polled ranks nondecreasing" true
    (ranks_nondecreasing (List.rev !observed));
  match Engine.build_progress ctx with
  | [ st ] ->
    Alcotest.(check string) "algorithm" "nsf" st.BS.algorithm;
    Alcotest.(check bool) "ready" true (st.BS.phase = BS.Ready);
    Alcotest.(check bool) "keys processed" true (st.BS.keys_processed >= rows);
    Alcotest.(check bool) "checkpoint count published" true
      (st.BS.checkpoints >= 0);
    check_history st
      ~expect_phases:[ BS.Quiesce; BS.Scan; BS.Merge; BS.Insert; BS.Ready ]
  | l -> Alcotest.fail (Printf.sprintf "expected 1 status, got %d" (List.length l))

let test_progress_sf_backlog () =
  let trace = quiet_trace () in
  let ctx = setup ~seed:13 ~trace () in
  let _ = Driver.populate ctx ~table:1 ~rows:300 ~seed:13 in
  let wcfg =
    { Driver.default with seed = 13; workers = 4; txns_per_worker = 20 }
  in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  match Engine.build_progress ctx with
  | [ st ] ->
    Alcotest.(check string) "algorithm" "sf" st.BS.algorithm;
    Alcotest.(check bool) "ready" true (st.BS.phase = BS.Ready);
    Alcotest.(check int) "backlog drained" 0 st.BS.backlog;
    Alcotest.(check bool) "scan position was published" true
      (st.BS.scan_rid <> "");
    check_history st
      ~expect_phases:[ BS.Scan; BS.Merge; BS.Bulk; BS.Drain; BS.Ready ]
  | l -> Alcotest.fail (Printf.sprintf "expected 1 status, got %d" (List.length l))

let test_progress_across_crash () =
  let trace = quiet_trace () in
  let ctx = setup ~seed:21 ~trace () in
  let _ = Driver.populate ctx ~table:1 ~rows:400 ~seed:21 in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  (* crash once the build reaches the merge stage or later *)
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"monitor" (fun () ->
         let continue = ref true in
         while !continue do
           (match Engine.build_progress ctx with
           | [ st ] when BS.rank st.BS.phase >= BS.rank BS.Merge ->
             Sched.request_crash ctx.Ctx.sched;
             continue := false
           | _ -> ());
           Sched.yield ctx.Ctx.sched
         done));
  (match Sched.run ctx.Ctx.sched with
  | () -> Alcotest.fail "expected crash"
  | exception Sched.Crashed -> ());
  (* the failure path recorded a dump through the surviving trace *)
  (match Trace.last_dump trace with
  | Some d ->
    Alcotest.(check bool) "crash dump mentions the crash" true
      (contains d "crash at step")
  | None -> Alcotest.fail "no crash dump");
  let ctx = Engine.crash ctx in
  (* recovery rehydrates the status from the catalog + durable progress:
     the display agrees with the restored build phase before any resume
     fiber runs (it used to stay empty until resume_builds) *)
  (match Engine.build_progress ctx with
  | [ st ] ->
    Alcotest.(check bool) "rehydrated status is mid-build" true
      (BS.rank st.BS.phase > BS.rank BS.Init && st.BS.phase <> BS.Ready)
  | l ->
    Alcotest.fail
      (Printf.sprintf "expected 1 rehydrated status, got %d" (List.length l)));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"resume" (fun () ->
         Ib.resume_builds ctx (Ib.default_config Ib.Sf)));
  Sched.run ctx.Ctx.sched;
  check_clean ctx;
  match Engine.build_progress ctx with
  | [ st ] ->
    Alcotest.(check bool) "ready after resume" true (st.BS.phase = BS.Ready);
    check_history st ~expect_phases:[ BS.Ready ]
  | l -> Alcotest.fail (Printf.sprintf "expected 1 status, got %d" (List.length l))

(* --- metrics refactor --- *)

let test_metrics_assoc () =
  let m = Metrics.create () in
  m.Metrics.page_reads <- 3;
  m.Metrics.txn_commits <- 7;
  let assoc = Metrics.to_assoc m in
  Alcotest.(check int) "20 counters" 20 (List.length assoc);
  Alcotest.(check int) "page_reads" 3 (List.assoc "page_reads" assoc);
  Alcotest.(check int) "txn_commits" 7 (List.assoc "txn_commits" assoc);
  let snap = Metrics.snapshot m in
  m.Metrics.page_reads <- 10;
  Alcotest.(check int) "snapshot is independent" 3 snap.Metrics.page_reads;
  let d = Metrics.diff ~after:m ~before:snap in
  Alcotest.(check int) "diff" 7 d.Metrics.page_reads;
  Alcotest.(check bool) "json carries every counter" true
    (List.for_all
       (fun (name, _) ->
         contains (Metrics.to_json m)
           (Printf.sprintf "\"%s\":" name))
       assoc);
  Metrics.reset m;
  Alcotest.(check bool) "reset zeroes all" true
    (List.for_all (fun (_, v) -> v = 0) (Metrics.to_assoc m))

(* --- jsonl sink --- *)

let test_jsonl_sink () =
  let trace = Trace.create () in
  let buf = Buffer.create 256 in
  Trace.add_jsonl_buffer_sink trace ~name:"buf" buf;
  let ctx = setup ~seed:2 ~trace () in
  let _ = Driver.populate ctx ~table:1 ~rows:10 ~seed:2 in
  let lines = String.split_on_char '\n' (String.trim (Buffer.contents buf)) in
  Alcotest.(check bool) "emitted lines" true (List.length lines > 5);
  List.iter
    (fun l ->
      Alcotest.(check bool) "line shape" true
        (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}');
      Alcotest.(check bool) "has step" true
        (contains l "\"step\":"))
    lines

let () =
  Alcotest.run "obs"
    [
      ( "hist",
        [
          Alcotest.test_case "percentiles match Stats.summarize" `Quick
            test_hist_matches_stats;
          Alcotest.test_case "overflow + merge + json" `Quick
            test_hist_overflow_and_merge;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "ring wraps" `Quick test_ring_wraps;
          Alcotest.test_case "deadlock dumps recorder" `Quick
            test_deadlock_dumps_recorder;
        ] );
      ( "events",
        [
          Alcotest.test_case "ordering matches scheduler steps" `Quick
            test_event_order_matches_steps;
          Alcotest.test_case "jsonl sink" `Quick test_jsonl_sink;
        ] );
      ( "progress",
        [
          Alcotest.test_case "nsf phases monotone" `Quick test_progress_nsf;
          Alcotest.test_case "sf backlog drained" `Quick
            test_progress_sf_backlog;
          Alcotest.test_case "across crash + resume" `Quick
            test_progress_across_crash;
        ] );
      ( "metrics",
        [ Alcotest.test_case "field-list derivations" `Quick test_metrics_assoc ] );
    ]
