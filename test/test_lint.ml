(* The lint fixture corpus: one planted violation per rule plus a clean
   twin, asserting the linter catches exactly what it claims to catch.
   Fixtures live in lint_fixtures/ as data-only files — they are parsed
   by the linter, never compiled. *)

open Oib_lint

let fx name = Filename.concat "lint_fixtures" name

let opts ?(require_mli = false) ?(l3_modules = []) () =
  {
    Lint.default_options with
    Lint.require_mli;
    Lint.config =
      (if l3_modules = [] then Summary.default_config
       else { Summary.default_config with Summary.l3_modules });
  }

let run ?require_mli ?l3_modules names =
  Lint.run_files ~options:(opts ?require_mli ?l3_modules ()) (List.map fx names)

let run_cfg config names =
  Lint.run_files
    ~options:{ Lint.default_options with Lint.require_mli = false; Lint.config }
    (List.map fx names)

(* unsuppressed (rule, basename) pairs, sorted *)
let error_rules res =
  List.sort_uniq compare
    (List.map
       (fun (d : Diag.t) -> (d.Diag.rule, Filename.basename d.Diag.file))
       (Lint.errors res))

let count_rule rule res =
  List.length
    (List.filter (fun (d : Diag.t) -> d.Diag.rule = rule) (Lint.errors res))

let check_rules msg expected res =
  Alcotest.(check (list (pair string string))) msg expected (error_rules res)

let test_l1_unbalanced () =
  let res = run [ "l1_unbalanced.ml"; "l1_balanced.ml" ] in
  check_rules "only the planted file trips L1"
    [ ("L1", "l1_unbalanced.ml") ]
    res;
  Alcotest.(check int) "leak + mode mismatch" 2 (count_rule "L1" res)

let test_l2_blocking () =
  let res = run [ "l2_yield_under_latch.ml"; "l2_clean.ml" ] in
  check_rules "only the planted file trips L2"
    [ ("L2", "l2_yield_under_latch.ml") ]
    res;
  Alcotest.(check int) "direct yield + transitive flush" 2
    (count_rule "L2" res)

let test_l2_suppression_recorded () =
  let res = run [ "l2_allowed.ml" ] in
  Alcotest.(check int) "no unsuppressed diagnostics" 0
    (List.length (Lint.errors res));
  let supp =
    List.filter (fun (d : Diag.t) -> d.Diag.suppressed <> None) res.Lint.r_diags
  in
  Alcotest.(check int) "one suppressed L2" 1 (List.length supp);
  let d = List.hd supp in
  Alcotest.(check string) "rule" "L2" d.Diag.rule;
  (match d.Diag.suppressed with
  | Some why ->
    Alcotest.(check bool) "justification is recorded verbatim" true
      (String.length why > 20)
  | None -> Alcotest.fail "suppression lost");
  Alcotest.(check int) "stats count the suppression" 1
    (List.length res.Lint.r_stats.Lint.st_suppressions)

let test_l3_wal_discipline () =
  let l3_modules = [ "L3_mutate_without_log"; "L3_logged" ] in
  let res = run ~l3_modules [ "l3_mutate_without_log.ml"; "l3_logged.ml" ] in
  check_rules "mutation without append trips L3; logged twin is clean"
    [ ("L3", "l3_mutate_without_log.ml") ]
    res

let test_l4_output_discipline () =
  let res = run [ "l4_rogue_print.ml"; "lock_manager.ml"; "l4_clean.ml" ] in
  check_rules "console output and hot-path Printf trip L4"
    [ ("L4", "l4_rogue_print.ml"); ("L4", "lock_manager.ml") ]
    res;
  Alcotest.(check int) "print_endline + printf + fprintf stderr + sprintf" 4
    (count_rule "L4" res)

let test_l5_cycle () =
  let res = run [ "l5_cycle_a.ml"; "l5_cycle_b.ml" ] in
  Alcotest.(check bool) "cycle reported" true (count_rule "L5" res >= 1);
  let edges = res.Lint.r_rules.Rules.order_edges in
  Alcotest.(check bool) "both edge directions discovered" true
    (List.mem ("L5_cycle_a", "L5_cycle_b") edges
    && List.mem ("L5_cycle_b", "L5_cycle_a") edges)

let test_l5_hierarchy_clean () =
  let res = run [ "l5_upper.ml"; "l5_lower.ml" ] in
  Alcotest.(check int) "one-way order has no cycle" 0 (count_rule "L5" res);
  Alcotest.(check bool) "the one-way edge is still recorded" true
    (List.mem ("L5_upper", "L5_lower") res.Lint.r_rules.Rules.order_edges)

let test_l6_missing_mli () =
  let res = run ~require_mli:true [ "l6_no_mli.ml"; "l6_with_mli.ml" ] in
  check_rules "module without .mli trips L6; the twin with one is clean"
    [ ("L6", "l6_no_mli.ml") ]
    res

let test_malformed_allow () =
  let res = run [ "malformed_allow.ml" ] in
  Alcotest.(check bool) "rule-less allow payload is reported" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.rule = "allow")
       (Lint.errors res));
  Alcotest.(check bool) "and it does not suppress the underlying L1" true
    (count_rule "L1" res >= 1)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_unused_allow_reported () =
  let res = run [ "unused_allow.ml" ] in
  Alcotest.(check int) "no diagnostics" 0 (List.length (Lint.errors res));
  (match res.Lint.r_unused_allows with
  | [ d ] ->
    Alcotest.(check string) "rule" "allow-unused" d.Diag.rule;
    Alcotest.(check bool) "names the stale allow" true
      (contains d.Diag.msg "L1: stale justification")
  | l ->
    Alcotest.failf "expected exactly one unused allow, got %d"
      (List.length l));
  (* a used allow is not reported *)
  let used = run [ "l2_allowed.ml" ] in
  Alcotest.(check int) "used allow not flagged" 0
    (List.length used.Lint.r_unused_allows)

let test_l7_escape () =
  let res = run [ "l7_escape.ml"; "l7_clean.ml" ] in
  check_rules "only the planted file trips L7"
    [ ("L7", "l7_escape.ml") ]
    res;
  Alcotest.(check int) "ref store + closure capture + use after release" 3
    (count_rule "L7" res)

let l8_cfg =
  { Summary.default_config with
    Summary.l8_read_modules = [ "L8_illegal"; "L8_clean" ];
  }

let test_l8_lifecycle () =
  let res = run_cfg l8_cfg [ "l8_illegal.ml"; "l8_clean.ml" ] in
  check_rules "only the planted file trips L8"
    [ ("L8", "l8_illegal.ml") ]
    res;
  Alcotest.(check int)
    "unguarded transition + wrong direction + ungated read" 3
    (count_rule "L8" res)

let l9_cfg ~clean =
  let tag n = if clean then "L9_clean_" ^ n else "L9_" ^ n in
  { Summary.default_config with
    Summary.l9_record_module = tag "records";
    Summary.l9_codec_modules = [ tag "codec" ];
    Summary.l9_redo_modules = [ tag "redo" ];
    Summary.l9_undo_modules = [ tag "redo" ];
  }

let test_l9_exhaustiveness () =
  let res =
    run_cfg (l9_cfg ~clean:false)
      [ "l9_records.ml"; "l9_codec.ml"; "l9_redo.ml" ]
  in
  check_rules "the orphan constructor trips L9"
    [ ("L9", "l9_records.ml") ]
    res;
  Alcotest.(check int) "no encode + no decode + no redo coverage" 3
    (count_rule "L9" res);
  let clean =
    run_cfg (l9_cfg ~clean:true)
      [ "l9_clean_records.ml"; "l9_clean_codec.ml"; "l9_clean_redo.ml" ]
  in
  Alcotest.(check int) "covered corpus is silent" 0 (count_rule "L9" clean)

let test_explain_trace () =
  (* the transitive L2 finding (yield reached through a local helper)
     must carry the interprocedural witness chain *)
  let res = run [ "l2_yield_under_latch.ml"; "l2_clean.ml" ] in
  let l2 =
    List.filter (fun (d : Diag.t) -> d.Diag.rule = "L2") (Lint.errors res)
  in
  Alcotest.(check bool) "at least one L2 carries a call path" true
    (List.exists (fun (d : Diag.t) -> List.length d.Diag.trace >= 2) l2)

let test_l10_atomicity () =
  let res = run [ "l10_window.ml"; "l10_clean.ml" ] in
  check_rules "only the planted file trips L10"
    [ ("L10", "l10_window.ml") ]
    res;
  Alcotest.(check int) "direct yield + transitive flush window" 2
    (count_rule "L10" res);
  Alcotest.(check int) "no spurious L11 from the guards" 0
    (count_rule "L11" res)

let test_l10_allowed () =
  let res = run [ "l10_allowed.ml" ] in
  Alcotest.(check int) "no unsuppressed diagnostics" 0
    (List.length (Lint.errors res));
  let supp =
    List.filter (fun (d : Diag.t) -> d.Diag.suppressed <> None) res.Lint.r_diags
  in
  Alcotest.(check int) "one suppressed L10" 1 (List.length supp);
  Alcotest.(check string) "rule" "L10" (List.hd supp).Diag.rule

let test_l11_stale_handle () =
  let res = run [ "l11_stale.ml"; "l11_clean.ml" ] in
  check_rules "only the planted file trips L11"
    [ ("L11", "l11_stale.ml") ]
    res;
  Alcotest.(check int) "stale catalog state + stale counter snapshot" 2
    (count_rule "L11" res);
  Alcotest.(check int) "projection-only code has no write window" 0
    (count_rule "L10" res)

let test_l10_explain_trace () =
  (* acceptance: the transitive L10 (yield reached through the [force]
     helper) must carry the interprocedural witness chain *)
  let res = run [ "l10_window.ml" ] in
  let l10 =
    List.filter (fun (d : Diag.t) -> d.Diag.rule = "L10") (Lint.errors res)
  in
  Alcotest.(check bool) "at least one L10 carries a call path" true
    (List.exists (fun (d : Diag.t) -> List.length d.Diag.trace >= 2) l10)

let test_l12_atomics_table () =
  let res = run [ "l12_regions.ml" ] in
  let at = res.Lint.r_rules.Rules.atomics in
  Alcotest.(check bool) "backlog crosses a yield" true
    (List.mem "Build_status.backlog" at.Atomics.at_crossing);
  Alcotest.(check bool) "keys_processed stays atomic" true
    (List.mem "Build_status.keys_processed" at.Atomics.at_atomic);
  Alcotest.(check bool) "crossing keys never listed as atomic" true
    (not (List.mem "Build_status.backlog" at.Atomics.at_atomic));
  let json = Atomics.to_json at in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true
        (contains json needle))
    [ "oib-lint-atomics/v1"; "\"crossing\""; "\"atomic\""; "\"regions\"" ]

let test_baseline_grandfathers () =
  let res = run [ "l10_window.ml" ] in
  Alcotest.(check int) "two findings before baselining" 2
    (List.length (Lint.errors res));
  let path = Filename.temp_file "oib_lint_baseline" ".txt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Lint.write_baseline path res;
      let bl = Lint.read_baseline path in
      let res' = Lint.apply_baseline bl res in
      Alcotest.(check int) "baselined findings no longer fail the run" 0
        (List.length (Lint.errors res'));
      Alcotest.(check int) "both are counted as baselined" 2
        res'.Lint.r_stats.Lint.st_baselined;
      Alcotest.(check bool) "they stay visible in r_diags" true
        (List.exists
           (fun (d : Diag.t) -> d.Diag.suppressed = Some "baselined")
           res'.Lint.r_diags);
      Alcotest.(check bool) "stats json reports the count" true
        (contains
           (Lint.stats_to_json res'.Lint.r_stats)
           "\"baselined\":2");
      (* a fresh finding in another file is NOT covered by the baseline *)
      let mixed =
        Lint.apply_baseline bl (run [ "l10_window.ml"; "l11_stale.ml" ])
      in
      Alcotest.(check int) "new findings still fail" 2
        (List.length (Lint.errors mixed)));
  (* a bad header is rejected, not silently ignored *)
  let bogus = Filename.temp_file "oib_lint_baseline" ".txt" in
  let oc = open_out bogus in
  output_string oc "not-a-baseline\n";
  close_out oc;
  Fun.protect
    ~finally:(fun () -> try Sys.remove bogus with Sys_error _ -> ())
    (fun () ->
      Alcotest.check_raises "bad header raises"
        (Failure (bogus ^ ": not an oib-lint baseline (header not-a-baseline)"))
        (fun () -> ignore (Lint.read_baseline bogus)))

let all_fixture_files =
  [
    "l1_unbalanced.ml"; "l1_balanced.ml"; "l2_yield_under_latch.ml";
    "l2_clean.ml"; "l2_allowed.ml"; "l3_mutate_without_log.ml";
    "l3_logged.ml"; "l4_rogue_print.ml"; "l4_clean.ml"; "lock_manager.ml";
    "l5_cycle_a.ml"; "l5_cycle_b.ml"; "l5_upper.ml"; "l5_lower.ml";
    "l6_no_mli.ml"; "l6_with_mli.ml"; "l7_escape.ml"; "l7_clean.ml";
    "l8_illegal.ml"; "l8_clean.ml"; "l9_records.ml"; "l9_codec.ml";
    "l9_redo.ml"; "l9_clean_records.ml"; "l9_clean_codec.ml";
    "l9_clean_redo.ml"; "malformed_allow.ml"; "unused_allow.ml";
    "l10_window.ml"; "l10_clean.ml"; "l10_allowed.ml"; "l11_stale.ml";
    "l11_clean.ml"; "l12_regions.ml"; "df_recursion.ml";
  ]

let shuffle st l =
  let a = Array.of_list l in
  for i = Array.length a - 1 downto 1 do
    let j = Random.State.int st (i + 1) in
    let t = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- t
  done;
  Array.to_list a

(* everything deterministic the engine produces: sorted diagnostics plus
   the call graph with converged effects (timings excluded by design) *)
let render res =
  String.concat "\n" (List.map Diag.to_string res.Lint.r_diags)
  ^ "\n"
  ^ Callgraph.to_json res.Lint.r_graph

let determinism_test =
  QCheck.Test.make ~name:"callgraph fixpoint is deterministic" ~count:25
    QCheck.small_int (fun seed ->
      let st = Random.State.make [| seed |] in
      let files = shuffle st all_fixture_files in
      let canonical = run (List.sort compare all_fixture_files) in
      let shuffled = run files in
      let rerun = run files in
      String.equal (render shuffled) (render rerun)
      && String.equal (render canonical) (render shuffled))

(* Satellite property: the joint latch-effect / may-yield fixpoint must
   not depend on the worklist's initial enqueue order. The corpus pins
   the hard convergence shapes: mutual recursion through a yield point,
   self-recursion through a may-yield call, higher-order application
   (df_recursion.ml), plus real L10/L11 windows whose witness chains
   must also come out identical. *)
let yield_corpus =
  [
    "df_recursion.ml"; "l10_window.ml"; "l10_clean.ml"; "l11_stale.ml";
    "l12_regions.ml"; "l2_yield_under_latch.ml";
  ]

let solved_graph_json ~order =
  let summaries =
    List.map (fun f -> Summary.summarize_file (fx f)) yield_corpus
  in
  let cg = Callgraph.build summaries in
  Dataflow.solve_effects ~order cg;
  Dataflow.emit_pass ~config:Summary.default_config cg;
  Callgraph.to_json cg

let worklist_order_test =
  QCheck.Test.make ~name:"yield fixpoint is worklist-order independent"
    ~count:25 QCheck.small_int (fun seed ->
      let st = Random.State.make [| seed |] in
      let canonical = solved_graph_json ~order:(fun us -> us) in
      let shuffled = solved_graph_json ~order:(shuffle st) in
      String.equal canonical shuffled)

let test_stats_json () =
  let res = run [ "l1_unbalanced.ml" ] in
  let json = Lint.stats_to_json res.Lint.r_stats in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true
        (contains json needle))
    [ "\"files\":1"; "\"L1\""; "\"suppressions\"" ]

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "L1 latch balance" `Quick test_l1_unbalanced;
          Alcotest.test_case "L2 blocking under latch" `Quick test_l2_blocking;
          Alcotest.test_case "L2 suppression recorded" `Quick
            test_l2_suppression_recorded;
          Alcotest.test_case "L3 WAL discipline" `Quick test_l3_wal_discipline;
          Alcotest.test_case "L4 output discipline" `Quick
            test_l4_output_discipline;
          Alcotest.test_case "L5 latch-order cycle" `Quick test_l5_cycle;
          Alcotest.test_case "L5 one-way hierarchy clean" `Quick
            test_l5_hierarchy_clean;
          Alcotest.test_case "L6 missing mli" `Quick test_l6_missing_mli;
          Alcotest.test_case "L7 page-handle escape" `Quick test_l7_escape;
          Alcotest.test_case "L8 lifecycle protocol" `Quick test_l8_lifecycle;
          Alcotest.test_case "L9 WAL exhaustiveness" `Quick
            test_l9_exhaustiveness;
          Alcotest.test_case "L10 yield atomicity" `Quick test_l10_atomicity;
          Alcotest.test_case "L10 suppression recorded" `Quick
            test_l10_allowed;
          Alcotest.test_case "L11 stale handle" `Quick test_l11_stale_handle;
          Alcotest.test_case "L10 explain carries call path" `Quick
            test_l10_explain_trace;
          Alcotest.test_case "L12 atomics table" `Quick test_l12_atomics_table;
          Alcotest.test_case "baseline grandfathers findings" `Quick
            test_baseline_grandfathers;
          Alcotest.test_case "explain carries call path" `Quick
            test_explain_trace;
          Alcotest.test_case "malformed allow reported" `Quick
            test_malformed_allow;
          Alcotest.test_case "unused allow reported" `Quick
            test_unused_allow_reported;
          Alcotest.test_case "stats json" `Quick test_stats_json;
        ] );
      ( "engine",
        [
          QCheck_alcotest.to_alcotest determinism_test;
          QCheck_alcotest.to_alcotest worklist_order_test;
        ] );
    ]
