(* The lint fixture corpus: one planted violation per rule plus a clean
   twin, asserting the linter catches exactly what it claims to catch.
   Fixtures live in lint_fixtures/ as data-only files — they are parsed
   by the linter, never compiled. *)

open Oib_lint

let fx name = Filename.concat "lint_fixtures" name

let opts ?(require_mli = false) ?(l3_modules = []) () =
  {
    Lint.default_options with
    Lint.require_mli;
    Lint.config =
      (if l3_modules = [] then Summary.default_config
       else { Summary.default_config with Summary.l3_modules });
  }

let run ?require_mli ?l3_modules names =
  Lint.run_files ~options:(opts ?require_mli ?l3_modules ()) (List.map fx names)

(* unsuppressed (rule, basename) pairs, sorted *)
let error_rules res =
  List.sort_uniq compare
    (List.map
       (fun (d : Diag.t) -> (d.Diag.rule, Filename.basename d.Diag.file))
       (Lint.errors res))

let count_rule rule res =
  List.length
    (List.filter (fun (d : Diag.t) -> d.Diag.rule = rule) (Lint.errors res))

let check_rules msg expected res =
  Alcotest.(check (list (pair string string))) msg expected (error_rules res)

let test_l1_unbalanced () =
  let res = run [ "l1_unbalanced.ml"; "l1_balanced.ml" ] in
  check_rules "only the planted file trips L1"
    [ ("L1", "l1_unbalanced.ml") ]
    res;
  Alcotest.(check int) "leak + mode mismatch" 2 (count_rule "L1" res)

let test_l2_blocking () =
  let res = run [ "l2_yield_under_latch.ml"; "l2_clean.ml" ] in
  check_rules "only the planted file trips L2"
    [ ("L2", "l2_yield_under_latch.ml") ]
    res;
  Alcotest.(check int) "direct yield + transitive flush" 2
    (count_rule "L2" res)

let test_l2_suppression_recorded () =
  let res = run [ "l2_allowed.ml" ] in
  Alcotest.(check int) "no unsuppressed diagnostics" 0
    (List.length (Lint.errors res));
  let supp =
    List.filter (fun (d : Diag.t) -> d.Diag.suppressed <> None) res.Lint.r_diags
  in
  Alcotest.(check int) "one suppressed L2" 1 (List.length supp);
  let d = List.hd supp in
  Alcotest.(check string) "rule" "L2" d.Diag.rule;
  (match d.Diag.suppressed with
  | Some why ->
    Alcotest.(check bool) "justification is recorded verbatim" true
      (String.length why > 20)
  | None -> Alcotest.fail "suppression lost");
  Alcotest.(check int) "stats count the suppression" 1
    (List.length res.Lint.r_stats.Lint.st_suppressions)

let test_l3_wal_discipline () =
  let l3_modules = [ "L3_mutate_without_log"; "L3_logged" ] in
  let res = run ~l3_modules [ "l3_mutate_without_log.ml"; "l3_logged.ml" ] in
  check_rules "mutation without append trips L3; logged twin is clean"
    [ ("L3", "l3_mutate_without_log.ml") ]
    res

let test_l4_output_discipline () =
  let res = run [ "l4_rogue_print.ml"; "lock_manager.ml"; "l4_clean.ml" ] in
  check_rules "console output and hot-path Printf trip L4"
    [ ("L4", "l4_rogue_print.ml"); ("L4", "lock_manager.ml") ]
    res;
  Alcotest.(check int) "print_endline + printf + fprintf stderr + sprintf" 4
    (count_rule "L4" res)

let test_l5_cycle () =
  let res = run [ "l5_cycle_a.ml"; "l5_cycle_b.ml" ] in
  Alcotest.(check bool) "cycle reported" true (count_rule "L5" res >= 1);
  let edges = res.Lint.r_rules.Rules.order_edges in
  Alcotest.(check bool) "both edge directions discovered" true
    (List.mem ("L5_cycle_a", "L5_cycle_b") edges
    && List.mem ("L5_cycle_b", "L5_cycle_a") edges)

let test_l5_hierarchy_clean () =
  let res = run [ "l5_upper.ml"; "l5_lower.ml" ] in
  Alcotest.(check int) "one-way order has no cycle" 0 (count_rule "L5" res);
  Alcotest.(check bool) "the one-way edge is still recorded" true
    (List.mem ("L5_upper", "L5_lower") res.Lint.r_rules.Rules.order_edges)

let test_l6_missing_mli () =
  let res = run ~require_mli:true [ "l6_no_mli.ml"; "l6_with_mli.ml" ] in
  check_rules "module without .mli trips L6; the twin with one is clean"
    [ ("L6", "l6_no_mli.ml") ]
    res

let test_malformed_allow () =
  let res = run [ "malformed_allow.ml" ] in
  Alcotest.(check bool) "rule-less allow payload is reported" true
    (List.exists
       (fun (d : Diag.t) -> d.Diag.rule = "allow")
       (Lint.errors res));
  Alcotest.(check bool) "and it does not suppress the underlying L1" true
    (count_rule "L1" res >= 1)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_unused_allow_reported () =
  let res = run [ "unused_allow.ml" ] in
  Alcotest.(check int) "no diagnostics" 0 (List.length (Lint.errors res));
  (match res.Lint.r_unused_allows with
  | [ d ] ->
    Alcotest.(check string) "rule" "allow-unused" d.Diag.rule;
    Alcotest.(check bool) "names the stale allow" true
      (contains d.Diag.msg "L1: stale justification")
  | l ->
    Alcotest.failf "expected exactly one unused allow, got %d"
      (List.length l));
  (* a used allow is not reported *)
  let used = run [ "l2_allowed.ml" ] in
  Alcotest.(check int) "used allow not flagged" 0
    (List.length used.Lint.r_unused_allows)

let test_stats_json () =
  let res = run [ "l1_unbalanced.ml" ] in
  let json = Lint.stats_to_json res.Lint.r_stats in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("json mentions " ^ needle) true
        (contains json needle))
    [ "\"files\":1"; "\"L1\""; "\"suppressions\"" ]

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "L1 latch balance" `Quick test_l1_unbalanced;
          Alcotest.test_case "L2 blocking under latch" `Quick test_l2_blocking;
          Alcotest.test_case "L2 suppression recorded" `Quick
            test_l2_suppression_recorded;
          Alcotest.test_case "L3 WAL discipline" `Quick test_l3_wal_discipline;
          Alcotest.test_case "L4 output discipline" `Quick
            test_l4_output_discipline;
          Alcotest.test_case "L5 latch-order cycle" `Quick test_l5_cycle;
          Alcotest.test_case "L5 one-way hierarchy clean" `Quick
            test_l5_hierarchy_clean;
          Alcotest.test_case "L6 missing mli" `Quick test_l6_missing_mli;
          Alcotest.test_case "malformed allow reported" `Quick
            test_malformed_allow;
          Alcotest.test_case "unused allow reported" `Quick
            test_unused_allow_reported;
          Alcotest.test_case "stats json" `Quick test_stats_json;
        ] );
    ]
