(* Deterministic simulation testing: the lib/dst harness itself, the
   determinism contract it relies on, and targeted fault coverage that the
   generated scenarios only hit probabilistically (log truncation vs.
   media restore, unique-violation rollback under a concurrent build). *)

open Oib_core
open Oib_dst
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver
module Trace = Oib_obs.Trace
module Btree = Oib_btree.Btree
module Rid = Oib_util.Rid
module Ikey = Oib_util.Ikey
module Record = Oib_util.Record

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let setup ?(seed = 3) () =
  let ctx = Engine.create ~seed ~page_capacity:512 () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  ctx

let check_clean ctx =
  Alcotest.(check (list string))
    "oracle clean" [] (Engine.consistency_errors ctx)

let phase ctx id = (Catalog.index ctx.Ctx.catalog id).Catalog.phase

(* Populate with distinct col-0 values (Driver.populate draws duplicates,
   which a unique build legitimately cancels on). *)
let populate_distinct ctx ~rows =
  let i = ref 0 in
  while !i < rows do
    let upto = min rows (!i + 64) in
    (match
       Engine.run_txn ctx (fun txn ->
           for j = !i to upto - 1 do
             ignore
               (Table_ops.insert ctx txn ~table:1
                  (Record.make
                     [|
                       Printf.sprintf "pk%06d" j; Printf.sprintf "s%04d" (j mod 89);
                     |]))
           done)
     with
    | Ok () -> ()
    | Error _ -> Alcotest.fail "populate aborted");
    i := upto
  done

let build_to_ready ?(cfg = Ib.default_config Ib.Nsf) ?(unique = false) ctx =
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx cfg ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique }));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool) "build ready" true (phase ctx 10 = Catalog.Ready)

(* --- determinism regression: the contract lib/dst is built on --- *)

let traced_run seed =
  let buf = Buffer.create (1 lsl 16) in
  let tr = Trace.create () in
  Trace.add_jsonl_buffer_sink tr ~name:"capture" buf;
  let sc =
    Scenario.generate ~seed
    |> Scenario.override ~faults:[ Scenario.Crash_at 120 ]
  in
  let o = Runner.run ~trace:tr sc in
  (o, Buffer.contents buf)

let test_identical_traces () =
  (* two engines, same seed, same build + workload + crash plan: the JSONL
     event streams must match event for event *)
  let o1, t1 = traced_run 11 in
  let o2, t2 = traced_run 11 in
  Alcotest.(check bool) "runs clean" false
    (Runner.failed o1 || Runner.failed o2);
  Alcotest.(check bool) "crash actually taken" true (o1.Runner.incarnations >= 2);
  Alcotest.(check int) "same shape" o1.Runner.total_steps o2.Runner.total_steps;
  Alcotest.(check bool) "trace non-trivial" true (String.length t1 > 2000);
  Alcotest.(check string) "event-for-event identical" t1 t2

let test_seeds_diverge () =
  let _, t1 = traced_run 11 in
  let _, t2 = traced_run 12 in
  Alcotest.(check bool) "different seed, different trace" true (t1 <> t2)

(* --- truncate_log vs. crash and vs. media restore (footnote 8) --- *)

let test_truncate_then_crash () =
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:200 ~seed:5 in
  build_to_ready ctx;
  ignore (Engine.truncate_log ctx);
  (* post-truncation activity, then a crash: restart recovery must need
     nothing older than the truncation point *)
  let wcfg =
    { Driver.default with Driver.seed = 5; workers = 2; txns_per_worker = 6 }
  in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  Sched.run ctx.Ctx.sched;
  let ctx' = Engine.crash ctx in
  check_clean ctx';
  Alcotest.(check bool) "index survived" true (phase ctx' 10 = Catalog.Ready)

let test_truncate_forfeits_media_restore () =
  let ctx = setup ~seed:7 () in
  let _ = Driver.populate ctx ~table:1 ~rows:150 ~seed:7 in
  build_to_ready ctx;
  let stale = Engine.backup ctx in
  (* committed work past the backup, then truncation: the log no longer
     reaches back to the backup point, so the restore is forfeited *)
  let wcfg =
    { Driver.default with Driver.seed = 8; workers = 2; txns_per_worker = 5 }
  in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  Sched.run ctx.Ctx.sched;
  ignore (Engine.truncate_log ctx);
  (match Engine.media_restore ctx stale with
  | _ -> Alcotest.fail "media_restore accepted a forfeited backup"
  | exception Engine.Media_recovery_forfeited { backup_lsn; log_start } ->
    Alcotest.(check bool) "log starts past the backup" true
      (log_start > backup_lsn));
  (* loud, not corrupt: the pre-failure engine is untouched... *)
  check_clean ctx;
  (* ...and a fresh post-truncation backup restores fine *)
  let fresh = Engine.backup ctx in
  let _ = Driver.spawn_workers ctx wcfg ~table:1 in
  Sched.run ctx.Ctx.sched;
  let ctx' = Engine.media_restore ctx fresh in
  check_clean ctx';
  Alcotest.(check bool) "index restored" true (phase ctx' 10 = Catalog.Ready)

(* --- unique-violation rollback under a concurrent NSF build (§2.2.2) --- *)

let test_unique_violation_rollback_during_build () =
  let rows = 400 in
  let ctx = setup ~seed:13 () in
  populate_distinct ctx ~rows;
  let heap_before = List.length (Driver.live_rids ctx ~table:1) in
  let violations = ref 0 in
  let during_build = ref false in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Nsf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = true }));
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"dup-inserter" (fun () ->
         (* wait until the builder has indexed an early key, so the
            transaction's direct maintenance finds it Present while the
            build is still in flight *)
         let indexed () =
           match Catalog.index ctx.Ctx.catalog 10 with
           | info -> Btree.find_kv info.Catalog.tree "pk000005" <> []
           | exception Invalid_argument _ -> false
         in
         while not (indexed ()) do
           Sched.yield ctx.Ctx.sched
         done;
         (match phase ctx 10 with
         | Catalog.Nsf_building _ -> during_build := true
         | _ -> ());
         match
           Engine.run_txn ctx (fun txn ->
               ignore
                 (Table_ops.insert ctx txn ~table:1
                    (Record.make [| "pk000005"; "duplicate" |])))
         with
         | Ok () -> Alcotest.fail "duplicate insert committed"
         | Error (`Unique_violation (idx, kv)) ->
           Alcotest.(check int) "violating index" 10 idx;
           Alcotest.(check string) "violating key" "pk000005" kv;
           incr violations
         | Error `Deadlock -> ()));
  Sched.run ctx.Ctx.sched;
  Alcotest.(check bool) "violation raised" true (!violations = 1);
  Alcotest.(check bool) "while build in progress" true !during_build;
  (* the transaction rolled back completely: heap row gone again, and the
     finished index holds exactly one entry per original row *)
  Alcotest.(check int) "heap unchanged" heap_before
    (List.length (Driver.live_rids ctx ~table:1));
  Alcotest.(check bool) "build finished ready" true (phase ctx 10 = Catalog.Ready);
  Alcotest.(check int) "one entry per row" rows
    (Btree.present_count (Catalog.index ctx.Ctx.catalog 10).Catalog.tree);
  check_clean ctx

(* --- the harness catches, shrinks, and reproduces planted violations --- *)

(* Same corruption oib-fuzz's --sabotage plants: a phantom entry inserted
   behind the WAL's back just before the final battery. *)
let plant_phantom (ctx : Ctx.t) =
  match Catalog.index ctx.Ctx.catalog 10 with
  | info ->
    ignore
      (Btree.set_state info.Catalog.tree
         (Ikey.make "zzz-phantom" (Rid.make ~page:999_983 ~slot:0))
         Oib_wal.Log_record.Present)
  | exception Invalid_argument _ -> ()

let test_harness_catches_planted_violation () =
  let sc = Scenario.generate ~seed:3 |> Scenario.override ~alg:Scenario.Nsf in
  let clean = Runner.run sc in
  Alcotest.(check bool) "clean without sabotage" false (Runner.failed clean);
  let o = Runner.run ~inject:plant_phantom sc in
  Alcotest.(check bool) "sabotage caught" true (Runner.failed o);
  Alcotest.(check (option string)) "at the final battery" (Some "final")
    o.Runner.failed_at

let test_shrinker_minimizes_and_repro_round_trips () =
  let sc = Scenario.generate ~seed:3 |> Scenario.override ~alg:Scenario.Nsf in
  let reproduces c = Runner.failed (Runner.run ~inject:plant_phantom c) in
  let small, runs = Shrink.shrink ~budget:60 ~reproduces sc in
  Alcotest.(check bool) "runs counted" true (runs > 0 && runs <= 60);
  Alcotest.(check bool) "still reproduces" true (reproduces small);
  (* the phantom reproduces everywhere, so the greedy walk must reach the
     floor of every dimension it shrinks *)
  Alcotest.(check int) "rows minimized" 10 small.Scenario.rows;
  Alcotest.(check int) "workers minimized" 0 small.Scenario.workers;
  Alcotest.(check string) "faults dropped" "none"
    (Scenario.faults_to_string small.Scenario.faults);
  (* the printed repro line round-trips through the CLI's own parsers *)
  let fs = Scenario.faults_to_string small.Scenario.faults in
  Alcotest.(check bool) "fault plan round-trips" true
    (Scenario.faults_of_string fs = small.Scenario.faults);
  let line = Scenario.repro_command ~sabotage:true small in
  Alcotest.(check bool) "repro names seed and sabotage" true
    (contains line "--seed 3" && contains line "--sabotage")

let test_fault_plan_parser () =
  let fs =
    [
      Scenario.Backup_at 14;
      Scenario.Checkpoint_at 40;
      Scenario.Truncate_log_at 77;
      Scenario.Media_failure_at 210;
      Scenario.Crash_at 300;
    ]
  in
  Alcotest.(check bool) "parse inverts print" true
    (Scenario.faults_of_string (Scenario.faults_to_string fs) = fs);
  Alcotest.(check bool) "empty plan" true (Scenario.faults_of_string "none" = []);
  Alcotest.(check bool) "generate is deterministic" true
    (Scenario.generate ~seed:42 = Scenario.generate ~seed:42)

(* --- sweep: every k-th step, and a clean pass over a real scenario --- *)

let test_sweep_crash_point_spacing () =
  Alcotest.(check (list int)) "every 10th"
    [ 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]
    (Sweep.crash_points ~base_steps:100 ~points:10);
  Alcotest.(check (list int)) "floored at every step" [ 1; 2; 3; 4; 5; 6; 7 ]
    (Sweep.crash_points ~base_steps:7 ~points:55)

let test_sweep_small_scenario_clean () =
  let sc =
    Scenario.generate ~seed:1
    |> Scenario.override ~alg:Scenario.Sf ~rows:60 ~workers:2 ~txns:6 ~post:2
  in
  let r = Sweep.sweep sc ~points:12 in
  Alcotest.(check (list string)) "base clean" [] r.Sweep.base_errors;
  Alcotest.(check bool) "points attempted" true (List.length r.Sweep.points >= 10);
  Alcotest.(check int) "no failures" 0 (List.length (Sweep.failures r))

let test_sweep_reports_poisoned_base () =
  let sc =
    Scenario.generate ~seed:1 |> Scenario.override ~alg:Scenario.Nsf ~rows:40
  in
  let r = Sweep.sweep ~inject:plant_phantom sc ~points:10 in
  Alcotest.(check bool) "base failure reported" true (r.Sweep.base_errors <> []);
  Alcotest.(check int) "no points wasted" 0 (List.length r.Sweep.points)

(* --- bounded mini-fuzz: generated fault plans, every oracle, in-tree --- *)

let test_generated_scenarios_clean () =
  for seed = 1 to 6 do
    let sc = Scenario.generate ~seed in
    let o = Runner.run sc in
    if Runner.failed o then
      Alcotest.failf "seed %d (%s) failed at %s: %s" seed
        (Scenario.alg_to_string sc.Scenario.alg)
        (Option.value o.Runner.failed_at ~default:"?")
        (String.concat "; " o.Runner.errors)
  done

let test_oracle_battery_clean_engine () =
  let ctx = setup () in
  let _ = Driver.populate ctx ~table:1 ~rows:80 ~seed:3 in
  build_to_ready ctx;
  Alcotest.(check (list string)) "battery clean" [] (Oracle.battery ctx)

let () =
  Alcotest.run "dst"
    [
      ( "determinism",
        [
          Alcotest.test_case "identical traces, same seed" `Quick
            test_identical_traces;
          Alcotest.test_case "traces diverge across seeds" `Quick
            test_seeds_diverge;
        ] );
      ( "truncate-log",
        [
          Alcotest.test_case "truncate then crash" `Quick test_truncate_then_crash;
          Alcotest.test_case "truncate forfeits stale media restore" `Quick
            test_truncate_forfeits_media_restore;
        ] );
      ( "unique-violation",
        [
          Alcotest.test_case "rollback during concurrent NSF build" `Quick
            test_unique_violation_rollback_during_build;
        ] );
      ( "harness",
        [
          Alcotest.test_case "catches planted violation" `Quick
            test_harness_catches_planted_violation;
          Alcotest.test_case "shrinks and reproduces" `Quick
            test_shrinker_minimizes_and_repro_round_trips;
          Alcotest.test_case "fault-plan parser" `Quick test_fault_plan_parser;
        ] );
      ( "sweep",
        [
          Alcotest.test_case "crash-point spacing" `Quick
            test_sweep_crash_point_spacing;
          Alcotest.test_case "small scenario clean" `Quick
            test_sweep_small_scenario_clean;
          Alcotest.test_case "poisoned base reported" `Quick
            test_sweep_reports_poisoned_base;
        ] );
      ( "mini-fuzz",
        [
          Alcotest.test_case "generated scenarios clean" `Quick
            test_generated_scenarios_clean;
          Alcotest.test_case "oracle battery on clean engine" `Quick
            test_oracle_battery_clean_engine;
        ] );
    ]
