(* a perfectly balanced function carrying an allow that suppresses
   nothing: --unused-allows must report it as stale *)
module Latch = Oib_sim.Latch

let balanced p =
  (Latch.acquire p X;
   Latch.release p X)
[@@lint.allow "L1: stale justification that no diagnostic ever needed"]
