(* Clean twin of l7_escape.ml: the legitimate patterns around a latched
   page handle. Fixture data for test_lint — parsed, never compiled. *)

(* copying a scalar field out of the latched section is the recommended
   remedy, not an escape *)
let page_id t rid =
  let p = Heap_file.latch_rid t rid S in
  let id = p.Page.id in
  Latch.release p.Page.latch S;
  id

let inventory = ref []

(* storing the page id (not the handle) in mutable structure is fine *)
let remember_id t rid =
  let p = Heap_file.latch_rid t rid X in
  inventory := p.Page.id :: !inventory;
  Latch.release p.Page.latch X;
  ()

(* a local function whose parameter shadows the handle captures
   nothing; the engine proves the release happens inside [walk] *)
let shadowed_walker t rid =
  let p = Heap_file.latch_rid t rid S in
  let rec walk (p : Page.t) =
    if p.Page.id >= 0 then Latch.release p.Page.latch S else walk p
  in
  walk p
