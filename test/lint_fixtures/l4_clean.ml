(* clean twin of l4_rogue_print: strings are built and returned, and
   sprintf is fine outside the lock/WAL modules *)
let describe x = "x = " ^ string_of_int x

let describe_fmt x = Printf.sprintf "x = %d" x
