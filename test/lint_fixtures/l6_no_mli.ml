(* planted L6: this module deliberately ships without a .mli *)
let exposed_by_accident x = x + 1
