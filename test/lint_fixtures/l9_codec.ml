(* Codec half of the planted L9 corpus: encodes and decodes every
   constructor except [Orphan]. Fixture data for test_lint — parsed,
   never compiled. *)

let encode = function
  | L9_records.Alpha n -> "A" ^ string_of_int n
  | L9_records.Beta s -> "B" ^ s
  | L9_records.Gamma -> "G"

let decode s =
  match s.[0] with
  | 'A' -> L9_records.Alpha 0
  | 'B' -> L9_records.Beta ""
  | _ -> L9_records.Gamma
