(* Clean twin of the L9 corpus: every constructor is encoded, decoded,
   classified, and replayed where its classifier demands it. Fixture
   data for test_lint — parsed, never compiled. *)

type body =
  | Alpha of int
  | Beta of string
  | Gamma

let is_redoable = function
  | Alpha _ -> true
  | Beta _ -> true
  | Gamma -> false

let is_undoable = function Alpha _ -> true | Beta _ | Gamma -> false
