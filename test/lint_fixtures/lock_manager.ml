(* planted L4: this fixture shadows the lock-manager module name, where
   any Printf reference (even sprintf) is banned on the hot path *)
let name_string id = Printf.sprintf "table:%d" id
