(* clean twin of l2_yield_under_latch: blocking happens after release *)
module Latch = Oib_sim.Latch
module Sched = Oib_sim.Sched

let polite p log =
  Latch.acquire p X;
  touch p;
  Latch.release p X;
  Oib_wal.Log_manager.flush log ~upto:lsn;
  Sched.yield ()
