(* the L2 here is suppressed by a justified allow: the diagnostic must
   survive as "suppressed", not disappear *)
module Latch = Oib_sim.Latch

let commit_force p log =
  (Latch.acquire p X;
   Oib_wal.Log_manager.flush log ~upto:lsn;
   Latch.release p X)
[@@lint.allow
  "L2: commit-point log force; the latch only covers the page header \
   update and the force is bounded by the group-commit window"]
