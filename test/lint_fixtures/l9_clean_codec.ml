(* Codec half of the clean L9 corpus. Fixture data for test_lint —
   parsed, never compiled. *)

let encode = function
  | L9_clean_records.Alpha n -> "A" ^ string_of_int n
  | L9_clean_records.Beta s -> "B" ^ s
  | L9_clean_records.Gamma -> "G"

let decode s =
  match s.[0] with
  | 'A' -> L9_clean_records.Alpha 0
  | 'B' -> L9_clean_records.Beta ""
  | _ -> L9_clean_records.Gamma
