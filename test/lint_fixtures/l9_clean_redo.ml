(* Replay half of the clean L9 corpus: both redoable constructors are
   replayed, the undoable one is undone. Fixture data for test_lint —
   parsed, never compiled. *)

let redo apply = function
  | L9_clean_records.Alpha n -> apply n
  | L9_clean_records.Beta _ -> ()
  | L9_clean_records.Gamma -> ()

let undo = function
  | L9_clean_records.Alpha n -> ignore n
  | _ -> ()
