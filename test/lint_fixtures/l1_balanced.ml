(* clean twin of l1_unbalanced: every path releases, with_latch balances *)
module Latch = Oib_sim.Latch

let balanced p ok =
  Latch.acquire p X;
  let r = if ok then touch p else skip p in
  Latch.release p X;
  r

let scoped p f = Latch.with_latch p S (fun () -> f p)

let early_exit p =
  Latch.acquire p X;
  match probe p with
  | Some v ->
    Latch.release p X;
    v
  | None ->
    Latch.release p X;
    fallback p
