(* planted L1: the [false] branch returns without releasing the latch *)
module Latch = Oib_sim.Latch

let unbalanced p ok =
  Latch.acquire p X;
  if ok then begin
    touch p;
    Latch.release p X;
    true
  end
  else false

(* planted L1: released in the wrong mode *)
let wrong_mode p =
  Latch.acquire p S;
  Latch.release p X
