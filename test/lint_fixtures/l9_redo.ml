(* Replay half of the planted L9 corpus: redoes Alpha and Beta, undoes
   Alpha; [Orphan] is classified redoable but never replayed. Fixture
   data for test_lint — parsed, never compiled. *)

let redo apply = function
  | L9_records.Alpha n -> apply n
  | L9_records.Beta _ -> ()
  | _ -> ()

let undo = function
  | L9_records.Alpha n -> ignore n
  | _ -> ()
