(* atomics-table fixture: one class crosses a yield (backlog), one is
   touched only inside a yield-free region (keys_processed). Expected:
   1 x L10 when linted alone; the --emit-atomics table lists
   Build_status.backlog under "crossing" and Build_status.keys_processed
   under "atomic". *)

type st = { mutable keys_processed : int; mutable backlog : int }

let force lm = Log_manager.flush_all lm

let crossing_fn st lm =
  if st.backlog > 0 then begin
    force lm;
    st.backlog <- 0
  end

let atomic_fn st =
  st.keys_processed <- st.keys_processed + 1
