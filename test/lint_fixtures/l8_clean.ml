(* Clean twin of l8_illegal.ml: every transition is dominated by a state
   check that restricts the source to legal_transition's preimage, and
   index reads are gated. Fixture data for test_lint — parsed, never
   compiled. *)

let enable cat pool idx =
  match Catalog.state cat idx with
  | Catalog.Write_only -> Catalog.set_state cat pool idx Catalog.Readable
  | _ -> ()

let disable cat pool idx =
  if Catalog.state cat idx = Catalog.Write_only then
    Catalog.set_state cat pool idx Catalog.Disabled

let gated_read info key =
  match info.state with
  | Catalog.Readable -> Btree.find info.tree key
  | _ -> None

(* a descriptor created Disabled may legally move to Write_only *)
let fresh cat pool idx =
  Catalog.add_index cat pool ~table_id:0 ~index_id:idx ~key_cols:[ 1 ]
    ~unique:false ~phase:Catalog.Ready ~state:Catalog.Disabled;
  Catalog.set_state cat pool idx Catalog.Write_only
