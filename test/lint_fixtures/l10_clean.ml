(* clean twin of l10_window: every read-compute-write over shared state
   either re-reads after the suspension, writes before it, or is an
   adjacent RMW whose right-hand side is itself a fresh read.
   Expected: no findings. *)

type st = { mutable keys_processed : int; mutable backlog : int }

let with_revalidation st sched =
  if st.keys_processed > 0 then begin
    Sched.yield sched;
    (* fresh read after the yield: the decision is re-made on current
       state, so there is no lost-update window *)
    if st.keys_processed > 0 then st.keys_processed <- 0
  end

let write_then_yield st sched =
  if st.backlog > 0 then begin
    st.backlog <- 0;
    Sched.yield sched
  end

let adjacent_rmw st sched =
  Sched.yield sched;
  st.keys_processed <- st.keys_processed + 1
