(* yield-fixpoint stress shapes for the worklist-order qcheck: mutual
   recursion through a yield point, self-recursion through a may-yield
   call, and a higher-order wrapper. Expected: no findings; the solved
   yield summaries must be identical under any worklist order. *)

let rec ping sched n =
  if n > 0 then begin
    Sched.yield sched;
    pong sched (n - 1)
  end

and pong sched n = if n > 0 then ping sched (n - 1)

let rec drain lm n =
  if n > 0 then begin
    Log_manager.flush lm;
    drain lm (n - 1)
  end

let apply_cb f x = f x

let run_all sched lm =
  ping sched 3;
  drain lm 2;
  apply_cb ignore ()
