(* clean twin of l6_no_mli: the interface next door satisfies L6 *)
let visible x = x + 1
