val visible : int -> int
