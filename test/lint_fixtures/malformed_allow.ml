(* planted "allow" finding: the suppression payload names no rule, so it
   must be reported rather than silently honoured *)
module Latch = Oib_sim.Latch

let sloppy p = (Latch.acquire p X) [@lint.allow "bogus"]
