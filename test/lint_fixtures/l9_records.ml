(* Planted L9 violation: the WAL record variant has a constructor
   ([Orphan]) that the codec never encodes or decodes and the redo path
   never replays, although the classifier marks it redoable. Fixture
   data for test_lint — parsed, never compiled. *)

type body =
  | Alpha of int
  | Beta of string
  | Gamma
  | Orphan of int

let is_redoable = function
  | Alpha _ -> true
  | Beta _ -> true
  | Gamma -> false
  | Orphan _ -> true

let is_undoable = function
  | Alpha _ -> true
  | Beta _ | Gamma | Orphan _ -> false
