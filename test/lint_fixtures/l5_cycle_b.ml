(* second half of the planted L5 cycle; see l5_cycle_a *)
module Latch = Oib_sim.Latch

let enter q =
  Latch.acquire q X;
  touch q;
  Latch.release q X

let cross q p =
  Latch.acquire q X;
  L5_cycle_a.enter p;
  Latch.release q X
