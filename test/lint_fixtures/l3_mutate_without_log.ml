(* planted L3: a heap-page mutation reaches the latch release with no
   WAL append in the same latched section (module is opted into L3 by
   the test's config) *)
module Latch = Oib_sim.Latch

let unlogged p hp rid r =
  Latch.acquire p X;
  Heap_page.put hp rid r;
  Latch.release p X
