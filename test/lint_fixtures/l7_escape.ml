(* Planted L7 violations: a latched page handle escaping the latched
   section. Fixture data for test_lint — parsed by the linter, never
   compiled. *)

let stash = ref None

(* escape 1: the live handle is stored into a ref *)
let store_in_ref t rid =
  let p = Heap_file.latch_rid t rid X in
  stash := Some p;
  Latch.release p.Page.latch X

(* escape 2: an escaping closure captures the live handle *)
let capture_in_closure t rid =
  let p = Heap_file.latch_rid t rid S in
  let read () = Heap_page.get (Heap_page.of_payload p.Page.payload) 0 in
  Latch.release p.Page.latch S;
  read

(* escape 3: the payload is touched after the latch was released *)
let use_after_release t rid =
  let p = Heap_file.latch_rid t rid S in
  Latch.release p.Page.latch S;
  Heap_page.get (Heap_page.of_payload p.Page.payload) rid.Rid.slot
