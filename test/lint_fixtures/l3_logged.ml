(* clean twin of l3_mutate_without_log: the mutation is logged before
   the latch release *)
module Latch = Oib_sim.Latch

let logged p hp rid r log =
  Latch.acquire p X;
  Heap_page.put hp rid r;
  Oib_wal.Log_manager.append log (record_for rid r);
  Latch.release p X
