(* planted L2, twice: a direct scheduler yield under a latch, and a
   transitive one through a local helper that forces the WAL *)
module Latch = Oib_sim.Latch
module Sched = Oib_sim.Sched

let force_log log = Oib_wal.Log_manager.flush log ~upto:lsn

let direct p =
  Latch.acquire p X;
  Sched.yield ();
  Latch.release p X

let transitive p log =
  Latch.acquire p X;
  force_log log;
  Latch.release p X
