(* planted: two L10 lost-update windows — one across a direct yield,
   one across a call that yields only transitively (interprocedural
   witness chain). Expected: 2 x L10, 0 x L11. *)

type st = { mutable keys_processed : int; mutable backlog : int }

let force lm = Log_manager.flush_all lm

let direct st sched =
  if st.keys_processed > 0 then begin
    Sched.yield sched;
    (* the guard's read is stale: another fiber may have advanced
       keys_processed during the yield *)
    st.keys_processed <- 0
  end

let chase st lm =
  if st.backlog > 0 then begin
    force lm;
    st.backlog <- 0
  end
