(* leaf of the clean latch-order hierarchy; never calls upward *)
module Latch = Oib_sim.Latch

let enter q =
  Latch.acquire q X;
  touch q;
  Latch.release q X
