(* the l10_window "chase" shape with a written justification: a
   single-writer protocol makes the window benign. Expected: 0 errors,
   1 suppressed L10. *)

type st = { mutable backlog : int }

let force lm = Log_manager.flush_all lm

let chase st lm =
  if st.backlog > 0 then begin
    force lm;
    (st.backlog <- 0)
    [@lint.allow "L10: single-writer fiber owns backlog; drain is the only mutator"]
  end
