(* planted L5 (with l5_cycle_b): A latches then calls into B, which
   latches then calls back into A — a lock-order inversion *)
module Latch = Oib_sim.Latch

let enter p =
  Latch.acquire p X;
  touch p;
  Latch.release p X

let cross p q =
  Latch.acquire p X;
  L5_cycle_b.enter q;
  Latch.release p X
