(* clean twin of the L5 cycle: acquisition order is strictly one-way,
   upper before lower *)
module Latch = Oib_sim.Latch

let cross p q =
  Latch.acquire p X;
  L5_lower.enter q;
  Latch.release p X
