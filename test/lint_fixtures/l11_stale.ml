(* planted: two stale-projection uses — a catalog state compared after
   a direct yield, and a counter snapshot used after a transitively
   yielding call. Expected: 2 x L11, 0 x L10 (no write-back). *)

type st = { mutable keys_processed : int }

let force lm = Log_manager.flush_all lm

let stale_direct cat sched id =
  let s = Catalog.state cat id in
  Sched.yield sched;
  (* s describes the pre-yield world; deciding on it now acts on a
     snapshot another fiber may have invalidated *)
  if s = Disabled then drop_index cat id

let stale_via_helper st lm =
  let n = st.keys_processed in
  force lm;
  report n
