(* planted L4, three ways: bare print, Printf to stdout, and fprintf
   with an explicit stderr channel *)
let chatty x =
  print_endline "entering chatty";
  Printf.printf "x = %d\n" x;
  Printf.fprintf stderr "warn: %d\n" x;
  x + 1
