(* Planted L8 violations: lifecycle transitions outside legal_transition
   and an ungated index read. Fixture data for test_lint — parsed, never
   compiled. *)

(* no dominating state check: Disabled -> Readable is reachable and is
   not a legal edge *)
let skip_write_only cat pool idx = Catalog.set_state cat pool idx Catalog.Readable

(* guarded, but in the wrong direction: Readable -> Write_only is not a
   legal edge either *)
let wrong_direction cat pool idx =
  match Catalog.state cat idx with
  | Catalog.Readable -> Catalog.set_state cat pool idx Catalog.Write_only
  | _ -> ()

(* an index read with no dominating lifecycle gate *)
let ungated_read info key = Btree.find info.tree key
