(* clean twin of l11_stale: the projected catalog state is re-validated
   against a fresh read after the yield before anything acts on it.
   Expected: no findings. *)

let revalidated cat sched id =
  let s = Catalog.state cat id in
  Sched.yield sched;
  if s = Catalog.state cat id then proceed cat id
