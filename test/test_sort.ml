open Oib_util
open Oib_sort
open Oib_storage

let keyn i = Ikey.make (Printf.sprintf "k%06d" i) (Rid.make ~page:i ~slot:0)

let shuffled_keys seed n =
  let rng = Rng.create seed in
  let a = Array.init n keyn in
  Rng.shuffle rng a;
  Array.to_list a

(* Feed keys as "pages" of [page_size] keys; returns the sorter. *)
let feed_all sorter keys ~page_size =
  let rec go pos = function
    | [] -> ()
    | rest ->
      let rec take k acc = function
        | x :: tl when k > 0 -> take (k - 1) (x :: acc) tl
        | tl -> (List.rev acc, tl)
      in
      let page, rest = take page_size [] rest in
      Sort_phase.feed_page sorter ~scan_pos:pos page;
      go (pos + 1) rest
  in
  go 0 keys

let merged_list store runs =
  let out =
    Merge_phase.merge_all
      (Durable_kv.create ())
      store ~ckpt_id:"t/m" ~inputs:runs ~output:"t/out" ~fan_in:8
      ~ckpt_every:1000
  in
  Run_store.to_list out

(* --- loser tree --- *)

let test_loser_tree_merges () =
  let mk l =
    let r = ref l in
    fun () ->
      match !r with
      | [] -> None
      | x :: tl ->
        r := tl;
        Some x
  in
  let streams =
    [|
      mk [ keyn 0; keyn 3; keyn 6 ];
      mk [ keyn 1; keyn 4; keyn 7 ];
      mk [ keyn 2; keyn 5 ];
    |]
  in
  let tree = Loser_tree.make ~streams () in
  let out = Loser_tree.drain tree in
  Alcotest.(check (list int))
    "sorted output"
    [ 0; 1; 2; 3; 4; 5; 6; 7 ]
    (List.map (fun (k, _) -> k.Ikey.rid.Rid.page) out);
  (* stream attribution must be correct *)
  List.iter
    (fun ((k : Ikey.t), s) ->
      Alcotest.(check int) "attribution" (k.Ikey.rid.Rid.page mod 3) s)
    out

let test_loser_tree_single_stream () =
  let r = ref [ keyn 1; keyn 2 ] in
  let streams = [| (fun () -> match !r with [] -> None | x :: tl -> r := tl; Some x) |] in
  let tree = Loser_tree.make ~streams () in
  Alcotest.(check int) "two keys" 2 (List.length (Loser_tree.drain tree))

let test_loser_tree_stability () =
  (* identical keys: lower stream index must win (stable merge) *)
  let k = keyn 5 in
  let mk l = let r = ref l in fun () ->
    match !r with [] -> None | x :: tl -> r := tl; Some x
  in
  let streams = [| mk [ k ]; mk [ k ]; mk [ k ] |] in
  let tree = Loser_tree.make ~streams () in
  let out = Loser_tree.drain tree in
  Alcotest.(check (list int)) "stream order preserved" [ 0; 1; 2 ]
    (List.map snd out)

(* --- sort phase --- *)

let test_sort_produces_sorted_runs () =
  let kv = Durable_kv.create () in
  let store = Run_store.create () in
  let sorter = Sort_phase.start kv store ~ckpt_id:"t/s" ~memory_keys:50 in
  feed_all sorter (shuffled_keys 1 2000) ~page_size:20;
  let runs = Sort_phase.finish sorter in
  Alcotest.(check bool) "several runs" true (List.length runs > 1);
  List.iter
    (fun name ->
      Alcotest.(check bool)
        (name ^ " sorted") true
        (Run_store.is_sorted (Run_store.find_run store name)))
    runs;
  let total =
    List.fold_left
      (fun acc n -> acc + Run_store.length (Run_store.find_run store n))
      0 runs
  in
  Alcotest.(check int) "no key lost" 2000 total

let test_replacement_selection_long_runs () =
  (* random input: replacement selection produces runs ~2x memory *)
  let kv = Durable_kv.create () in
  let store = Run_store.create () in
  let sorter = Sort_phase.start kv store ~ckpt_id:"t/s" ~memory_keys:100 in
  feed_all sorter (shuffled_keys 3 5000) ~page_size:50;
  let runs = Sort_phase.finish sorter in
  let avg = 5000.0 /. float_of_int (List.length runs) in
  Alcotest.(check bool)
    (Printf.sprintf "avg run length %.0f > memory" avg)
    true (avg > 100.0)

let test_sorted_input_single_run () =
  let kv = Durable_kv.create () in
  let store = Run_store.create () in
  let sorter = Sort_phase.start kv store ~ckpt_id:"t/s" ~memory_keys:10 in
  feed_all sorter (List.init 500 keyn) ~page_size:25;
  let runs = Sort_phase.finish sorter in
  Alcotest.(check int) "one run for sorted input" 1 (List.length runs)

let test_end_to_end_sort () =
  let kv = Durable_kv.create () in
  let store = Run_store.create () in
  let sorter = Sort_phase.start kv store ~ckpt_id:"t/s" ~memory_keys:64 in
  feed_all sorter (shuffled_keys 7 3000) ~page_size:30;
  let runs = Sort_phase.finish sorter in
  let out = merged_list store runs in
  Alcotest.(check int) "all keys" 3000 (List.length out);
  Alcotest.(check (list int)) "fully sorted"
    (List.init 3000 Fun.id)
    (List.map (fun (k : Ikey.t) -> k.Ikey.rid.Rid.page) out)

(* --- sort phase crash / restart --- *)

let sort_with_crash ~crash_after_pages ~ckpt_every_pages seed =
  let kv = Durable_kv.create () in
  let store = ref (Run_store.create ()) in
  let keys = shuffled_keys seed 2000 in
  let pages =
    let rec go acc cur n = function
      | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
      | x :: tl ->
        if n = 20 then go (List.rev cur :: acc) [ x ] 1 tl
        else go acc (x :: cur) (n + 1) tl
    in
    go [] [] 0 keys
  in
  let pages = Array.of_list pages in
  let sorter = Sort_phase.start kv !store ~ckpt_id:"t/s" ~memory_keys:50 in
  (* first life: feed until the crash point, checkpointing periodically *)
  (try
     Array.iteri
       (fun i page ->
         if i = crash_after_pages then raise Exit;
         Sort_phase.feed_page sorter ~scan_pos:i page;
         if (i + 1) mod ckpt_every_pages = 0 then Sort_phase.checkpoint sorter)
       pages
   with Exit -> ());
  (* crash: run store loses unforced tails *)
  store := Run_store.crash !store;
  let sorter' =
    match Sort_phase.resume kv !store ~ckpt_id:"t/s" ~memory_keys:50 with
    | Some s -> s
    | None -> Sort_phase.start kv !store ~ckpt_id:"t/s2" ~memory_keys:50
  in
  let resume_pos = Sort_phase.scan_pos sorter' in
  (* second life: rescan from the checkpointed position only *)
  Array.iteri
    (fun i page ->
      if i > resume_pos then Sort_phase.feed_page sorter' ~scan_pos:i page)
    pages;
  let runs = Sort_phase.finish sorter' in
  (resume_pos, merged_list !store runs)

let test_sort_restart_exact () =
  let _, out = sort_with_crash ~crash_after_pages:60 ~ckpt_every_pages:25 2 in
  Alcotest.(check int) "all keys after restart" 2000 (List.length out);
  Alcotest.(check (list int)) "sorted and complete"
    (List.init 2000 Fun.id)
    (List.map (fun (k : Ikey.t) -> k.Ikey.rid.Rid.page) out)

let test_sort_restart_bounds_lost_work () =
  let resume_pos, _ = sort_with_crash ~crash_after_pages:60 ~ckpt_every_pages:25 2 in
  (* 50 pages were checkpointed before the crash at page 60 *)
  Alcotest.(check int) "resumes at last checkpoint" 49 resume_pos

let prop_sort_restart_any_crash_point =
  QCheck.Test.make ~name:"sort restart correct at any crash point" ~count:20
    QCheck.(pair small_nat (int_bound 99))
    (fun (seed, crash_at) ->
      let _, out = sort_with_crash ~crash_after_pages:crash_at ~ckpt_every_pages:10 seed in
      List.map (fun (k : Ikey.t) -> k.Ikey.rid.Rid.page) out
      = List.init 2000 Fun.id)

(* --- merge crash / restart --- *)

let merge_with_crash ~crash_after ~ckpt_every seed =
  let kv = Durable_kv.create () in
  let store = ref (Run_store.create ()) in
  let sorter = Sort_phase.start kv !store ~ckpt_id:"t/s" ~memory_keys:50 in
  feed_all sorter (shuffled_keys seed 2000) ~page_size:20;
  let runs = Sort_phase.finish sorter in
  (* first life: crash after [crash_after] merged keys *)
  (try
     ignore
       (Merge_phase.merge ~stop_after:crash_after kv !store ~ckpt_id:"t/m"
          ~inputs:runs ~output:"t/out" ~ckpt_every)
   with Merge_phase.Injected_crash -> ());
  store := Run_store.crash !store;
  (* second life: resume from the merge checkpoint *)
  let out =
    Merge_phase.merge kv !store ~ckpt_id:"t/m" ~inputs:runs ~output:"t/out"
      ~ckpt_every
  in
  out

let test_merge_restart () =
  let out = merge_with_crash ~crash_after:900 ~ckpt_every:100 5 in
  Alcotest.(check int) "no key lost, none duplicated" 2000 (Run_store.length out);
  Alcotest.(check bool) "sorted" true (Run_store.is_sorted out);
  Alcotest.(check (list int)) "exact content"
    (List.init 2000 Fun.id)
    (List.map (fun (k : Ikey.t) -> k.Ikey.rid.Rid.page) (Run_store.to_list out))

let prop_merge_restart_any_crash_point =
  QCheck.Test.make ~name:"merge restart correct at any crash point" ~count:15
    QCheck.(pair small_nat (int_bound 1999))
    (fun (seed, crash_at) ->
      let out = merge_with_crash ~crash_after:crash_at ~ckpt_every:73 seed in
      Run_store.length out = 2000 && Run_store.is_sorted out)

(* --- qcheck: loser tree on arbitrary inputs --- *)

let prop_loser_tree_sorted_permutation =
  (* arbitrary stream contents (sorted per stream — the merge
     precondition); the merged output must be ordered by key value and a
     permutation of the union, entry for entry (rids are unique tags) *)
  QCheck.Test.make ~name:"loser tree: sorted permutation of arbitrary input"
    ~count:200
    QCheck.(
      list_of_size Gen.(1 -- 6) (list_of_size Gen.(0 -- 40) (int_bound 30)))
    (fun raw ->
      let id = ref 0 in
      let streams_keys =
        List.map
          (fun vals ->
            List.map
              (fun v ->
                incr id;
                Ikey.make (Printf.sprintf "k%02d" v) (Rid.make ~page:!id ~slot:0))
              vals
            |> List.sort Ikey.compare)
          raw
      in
      let streams =
        Array.of_list
          (List.map
             (fun l ->
               let r = ref l in
               fun () ->
                 match !r with
                 | [] -> None
                 | x :: tl ->
                   r := tl;
                   Some x)
             streams_keys)
      in
      let out = List.map fst (Loser_tree.drain (Loser_tree.make ~streams ())) in
      let rec nondecreasing = function
        | a :: (b :: _ as tl) -> Ikey.compare_kv a b <= 0 && nondecreasing tl
        | _ -> true
      in
      nondecreasing out
      && List.sort Ikey.compare out
         = List.sort Ikey.compare (List.concat streams_keys))

(* --- qcheck: resumed merge is byte-identical to an uninterrupted one --- *)

let merge_uninterrupted ~ckpt_every seed =
  let kv = Durable_kv.create () in
  let store = Run_store.create () in
  let sorter = Sort_phase.start kv store ~ckpt_id:"t/s" ~memory_keys:50 in
  feed_all sorter (shuffled_keys seed 2000) ~page_size:20;
  let runs = Sort_phase.finish sorter in
  Merge_phase.merge kv store ~ckpt_id:"t/m" ~inputs:runs ~output:"t/out"
    ~ckpt_every

let prop_merge_resume_byte_identical =
  (* crash at an arbitrary output position, resume from the checkpoint:
     every key AND every rid must match the uninterrupted merge exactly *)
  QCheck.Test.make
    ~name:"merge resumed from any checkpoint = uninterrupted output"
    ~count:15
    QCheck.(pair small_nat (int_bound 1999))
    (fun (seed, crash_at) ->
      Run_store.to_list (merge_with_crash ~crash_after:crash_at ~ckpt_every:73 seed)
      = Run_store.to_list (merge_uninterrupted ~ckpt_every:73 seed))

let () =
  Alcotest.run "sort"
    [
      ( "loser-tree",
        [
          Alcotest.test_case "merges" `Quick test_loser_tree_merges;
          Alcotest.test_case "single stream" `Quick test_loser_tree_single_stream;
          Alcotest.test_case "stability" `Quick test_loser_tree_stability;
        ] );
      ( "sort-phase",
        [
          Alcotest.test_case "sorted runs" `Quick test_sort_produces_sorted_runs;
          Alcotest.test_case "replacement selection run length" `Quick
            test_replacement_selection_long_runs;
          Alcotest.test_case "sorted input, one run" `Quick
            test_sorted_input_single_run;
          Alcotest.test_case "end to end" `Quick test_end_to_end_sort;
        ] );
      ( "restart",
        [
          Alcotest.test_case "sort restart exact" `Quick test_sort_restart_exact;
          Alcotest.test_case "bounded lost work" `Quick
            test_sort_restart_bounds_lost_work;
          Alcotest.test_case "merge completes" `Quick test_merge_restart;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sort_restart_any_crash_point;
            prop_merge_restart_any_crash_point;
            prop_loser_tree_sorted_permutation;
            prop_merge_resume_byte_identical;
          ]
      );
    ]
