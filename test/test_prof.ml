(* The deterministic virtual-time profiler: qcheck invariants on the
   weighted tree (folded weights partition the sample count, globally
   and per fiber; every sample lands in exactly one wait-state bucket),
   online-vs-offline folding agreement over an instrumented build,
   byte-for-byte same-seed determinism, the empty self-diff, and a
   signed NSF-vs-SF differential. *)

open Oib_core
module Sched = Oib_sim.Sched
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event
module Profiler = Oib_obs.Profiler
module Profile = Oib_obs_analysis.Profile
module Driver = Oib_workload.Driver

(* --- pure-profiler qcheck: no engine, synthetic sampling rounds ------ *)

(* A round is a list of (fiber id, run state); fiber names derive from
   the id so equal ids collapse to equal normalized names. *)
let run_rounds rounds =
  let trace = Trace.create () in
  let captured = ref [] in
  Trace.add_sink trace ~name:"capture" (fun (s : Event.stamped) ->
      match s.event with
      | Event.Prof_sample _ -> captured := s :: !captured
      | _ -> ());
  let prof = Profiler.create trace in
  List.iter
    (fun round ->
      Profiler.sample prof
        ~fibers:
          (List.map
             (fun (id, st) ->
               let state =
                 match st mod 3 with
                 | 0 -> Profiler.Running
                 | 1 -> Profiler.Runnable
                 | _ -> Profiler.Blocked
               in
               (id, Printf.sprintf "worker-%d" id, state))
             round))
    rounds;
  (prof, List.rev !captured)

let sum l = List.fold_left (fun a (_, w) -> a + w) 0 l

let weights_partition_samples rounds =
  let prof, captured = run_rounds rounds in
  let total = List.fold_left (fun a r -> a + List.length r) 0 rounds in
  (* global: tree weights, bucket counts and event count all equal the
     number of (round, fiber) pairs handed in *)
  Profiler.samples prof = total
  && sum (Profiler.weights prof) = total
  && sum (Profiler.by_state prof) = total
  && List.length captured = total
  (* per fiber: the stacks rooted at each fiber's frame carry exactly
     that fiber's sample count *)
  && List.for_all
       (fun (fname, n) ->
         let rooted =
           List.filter
             (fun (path, _) ->
               match String.index_opt path ';' with
               | Some i -> String.sub path 0 i = fname
               | None -> path = fname)
             (Profiler.weights prof)
         in
         sum rooted = n)
       (Profiler.by_fiber prof)

let buckets_partition rounds =
  let _, captured = run_rounds rounds in
  List.for_all
    (fun (s : Event.stamped) ->
      match s.event with
      | Event.Prof_sample { state; _ } ->
        List.length (List.filter (String.equal state) Profiler.states) = 1
      | _ -> false)
    captured

let round_gen =
  QCheck.(
    small_list (small_list (pair (int_range 0 5) (int_range 0 8))))

let qcheck_weights =
  QCheck.Test.make ~count:200
    ~name:"folded weights sum to sampled count, per fiber and in total"
    round_gen weights_partition_samples

let qcheck_buckets =
  QCheck.Test.make ~count:200
    ~name:"every sample lands in exactly one of the six buckets" round_gen
    buckets_partition

(* --- instrumented builds ------------------------------------------- *)

let profiled_build alg ~seed =
  let trace = Trace.create () in
  let jsonl = Buffer.create 4096 in
  Trace.add_jsonl_buffer_sink trace ~name:"jsonl" jsonl;
  let events = ref [] in
  Trace.add_sink trace ~name:"events" (fun s -> events := s :: !events);
  let ctx = Engine.create ~seed ~page_capacity:512 ~trace () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows:150 ~seed in
  let prof, _ = Obs_sampler.install_profiler ctx ~every:3 () in
  let _ =
    Driver.spawn_workers ctx
      { Driver.default with seed; workers = 2; txns_per_worker = 8 }
      ~table:1
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config alg) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  Sched.run ctx.Ctx.sched;
  (prof, List.rev !events, Buffer.contents jsonl)

let test_online_eq_offline () =
  let prof, events, _ = profiled_build Ib.Nsf ~seed:11 in
  Alcotest.(check bool) "profile non-empty" true (Profiler.samples prof > 0);
  Alcotest.(check string) "online tree folds like the offline aggregator"
    (Profile.folded events) (Profiler.folded prof);
  Alcotest.(check int) "offline total weight = online sample count"
    (Profiler.samples prof)
    (Profile.total_weight events)

let test_build_buckets () =
  let _, events, _ = profiled_build Ib.Sf ~seed:11 in
  let samples = Profile.samples events in
  Alcotest.(check bool) "sampled" true (samples <> []);
  List.iter
    (fun (s : Profile.sample) ->
      if not (List.mem s.Profile.state Profiler.states) then
        Alcotest.failf "sample in unknown bucket %S" s.Profile.state)
    samples;
  Alcotest.(check int) "by_state partitions the capture"
    (List.length samples)
    (sum (Profile.by_state events))

let test_determinism () =
  let prof_a, _, jsonl_a = profiled_build Ib.Nsf ~seed:23 in
  let prof_b, _, jsonl_b = profiled_build Ib.Nsf ~seed:23 in
  Alcotest.(check string) "same seed, byte-identical capture" jsonl_a jsonl_b;
  Alcotest.(check string) "same seed, byte-identical folded profile"
    (Profiler.folded prof_a) (Profiler.folded prof_b)

let test_self_diff_empty () =
  let _, events, _ = profiled_build Ib.Nsf ~seed:5 in
  Alcotest.(check int) "diff of a run against itself is empty" 0
    (List.length (Profile.diff events events))

let test_nsf_sf_diff_signed () =
  let _, nsf, _ = profiled_build Ib.Nsf ~seed:5 in
  let _, sf, _ = profiled_build Ib.Sf ~seed:5 in
  let deltas = Profile.diff nsf sf in
  Alcotest.(check bool) "nsf-vs-sf diff reports at least one delta" true
    (deltas <> []);
  Alcotest.(check bool) "deltas are signed (zero paths dropped)" true
    (List.for_all (fun (_, d) -> d <> 0) deltas)

let () =
  Alcotest.run "prof"
    [
      ( "invariants",
        [
          QCheck_alcotest.to_alcotest qcheck_weights;
          QCheck_alcotest.to_alcotest qcheck_buckets;
        ] );
      ( "build",
        [
          Alcotest.test_case "online = offline folding" `Quick
            test_online_eq_offline;
          Alcotest.test_case "buckets partition a real capture" `Quick
            test_build_buckets;
          Alcotest.test_case "same-seed byte determinism" `Quick
            test_determinism;
          Alcotest.test_case "self-diff is empty" `Quick test_self_diff_empty;
          Alcotest.test_case "nsf-vs-sf diff is signed" `Quick
            test_nsf_sf_diff_signed;
        ] );
    ]
