(* oib-san: the runtime sanitizer. Unit tests drive San.feed with
   synthetic probe sequences (planted races, planted order inversions,
   WAL discipline breaks) and assert exactly what is and is not
   reported; integration tests attach the sanitizer to real runs — the
   lock manager, a forced no-WAL page steal, and full NSF/SF builds
   under the DST runner, which must come back clean. *)

open Oib_san
open Oib_core
open Oib_dst
module Probe = Oib_obs.Probe
module Trace = Oib_obs.Trace
module Diag = Oib_lint.Diag
module Sched = Oib_sim.Sched
module LockM = Oib_lock.Lock_manager
module Page = Oib_storage.Page
module Heap_file = Oib_storage.Heap_file
module Buffer_pool = Oib_storage.Buffer_pool
module Record = Oib_util.Record

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let rules san =
  List.sort_uniq compare
    (List.map (fun (d : Diag.t) -> d.Diag.rule) (San.reports san))

let report_strings san = List.map Diag.to_string (San.reports san)

let check_rules msg expected san =
  Alcotest.(check (list string)) msg expected (rules san)

let latch_acq ?(excl = true) ?(role = "page") ~uid ~page () =
  Probe.Latch_acq { uid; role; page; excl }

let latch_rel ?(excl = true) ?(role = "page") ~uid ~page () =
  Probe.Latch_rel { uid; role; page; excl }

(* --- lockset race detection --- *)

(* An unlatched write racing a latched read on the same page: no common
   latch, no happens-before edge, different fibers — must be reported. *)
let test_race_detected () =
  let san = San.create () in
  San.feed san 1 (latch_acq ~uid:1 ~page:3 ());
  San.feed san 1 (latch_rel ~uid:1 ~page:3 ());
  San.feed san 2 (Probe.Access { page = 3; write = true; site = "rogue" });
  check_rules "unlatched write is a race" [ "SAN-race" ] san;
  Alcotest.(check bool) "not clean" false (San.clean san)

(* Same-fiber accesses never race, whatever they hold. *)
let test_same_fiber_clean () =
  let san = San.create () in
  San.feed san 1 (Probe.Access { page = 3; write = true; site = "a" });
  San.feed san 1 (Probe.Access { page = 3; write = true; site = "b" });
  check_rules "same fiber, no race" [] san

(* Fiber spawn is a happens-before edge: parent's earlier unlatched
   write is ordered before everything the child does. *)
let test_vc_spawn_suppression () =
  let san = San.create () in
  San.feed san 1 (Probe.Access { page = 6; write = true; site = "parent" });
  San.feed san 1 (Probe.Spawn { child = 2 });
  San.feed san 2 (Probe.Access { page = 6; write = true; site = "child" });
  check_rules "spawn edge orders the pair" [] san

(* A latch release-acquire pair carries a vector-clock edge even for
   accesses the latch itself does not cover. *)
let test_vc_latch_handoff_suppression () =
  let san = San.create () in
  San.feed san 1 (Probe.Access { page = 5; write = true; site = "before" });
  San.feed san 1 (latch_rel ~uid:9 ~page:(-1) ());
  San.feed san 2 (latch_acq ~uid:9 ~page:(-1) ());
  San.feed san 2 (Probe.Access { page = 5; write = true; site = "after" });
  check_rules "release-acquire orders the pair" [] san

(* Without the handoff the same pair must be flagged — the suppression
   test above is only meaningful if this twin trips. *)
let test_vc_no_handoff_races () =
  let san = San.create () in
  San.feed san 1 (Probe.Access { page = 5; write = true; site = "before" });
  San.feed san 2 (Probe.Access { page = 5; write = true; site = "after" });
  check_rules "no edge, so it races" [ "SAN-race" ] san

(* An eviction invalidates the page's shadow state: the rebuilt page's
   latch is a fresh uid and stale tokens must not fabricate races. *)
let test_evict_clears_shadow () =
  let san = San.create () in
  San.feed san 1 (Probe.Access { page = 4; write = true; site = "a" });
  San.feed san 0 (Probe.Page_evict { page = 4 });
  San.feed san 2 (Probe.Access { page = 4; write = true; site = "b" });
  check_rules "evict clears the shadow" [] san

(* --- Goodlock order-cycle prediction --- *)

let lock_acq ?(cond = false) ~txn ~target ~table () =
  Probe.Lock_acq { txn; target; table; cond }

let lock_rel ~txn ~target ~table () = Probe.Lock_rel { txn; target; table }

(* The two halves of a lock-order inversion, in different fibers and
   never concurrent — no deadlock manifests, the cycle is still
   predicted. *)
let test_goodlock_inversion () =
  let san = San.create () in
  San.feed san 1 (lock_acq ~txn:1 ~target:"r1" ~table:false ());
  San.feed san 1 (lock_acq ~txn:1 ~target:"t1" ~table:true ());
  San.feed san 1 (lock_rel ~txn:1 ~target:"r1" ~table:false ());
  San.feed san 1 (lock_rel ~txn:1 ~target:"t1" ~table:true ());
  San.feed san 2 (lock_acq ~txn:2 ~target:"t2" ~table:true ());
  San.feed san 2 (lock_acq ~txn:2 ~target:"r2" ~table:false ());
  check_rules "inversion predicted" [ "SAN-order" ] san

(* A conditional request can never wait, so it draws no order edge:
   the same inversion with one conditional half stays clean. *)
let test_goodlock_conditional_exempt () =
  let san = San.create () in
  San.feed san 1 (lock_acq ~txn:1 ~target:"r1" ~table:false ());
  San.feed san 1 (lock_acq ~cond:true ~txn:1 ~target:"t1" ~table:true ());
  San.feed san 1 (lock_rel ~txn:1 ~target:"r1" ~table:false ());
  San.feed san 1 (lock_rel ~txn:1 ~target:"t1" ~table:true ());
  San.feed san 2 (lock_acq ~txn:2 ~target:"t2" ~table:true ());
  San.feed san 2 (lock_acq ~txn:2 ~target:"r2" ~table:false ());
  check_rules "conditional half draws no edge" [] san

(* The graph survives Epoch probes: each half observed in a different
   run still assembles the cycle. *)
let test_goodlock_across_runs () =
  let san = San.create () in
  San.feed san 1 (lock_acq ~txn:1 ~target:"r1" ~table:false ());
  San.feed san 1 (lock_acq ~txn:1 ~target:"t1" ~table:true ());
  San.feed san 0 (Probe.Epoch { label = "run" });
  San.feed san 1 (lock_acq ~txn:9 ~target:"t9" ~table:true ());
  San.feed san 1 (lock_acq ~txn:9 ~target:"r9" ~table:false ());
  check_rules "cycle assembled across runs" [ "SAN-order" ] san

(* End to end through the real lock manager: two transactions take
   record and table locks in opposite orders, sequentially — the probes
   emitted by the lock manager itself must feed the cycle. *)
let test_goodlock_via_lock_manager () =
  let tr = Trace.create () in
  Trace.set_on_dump tr (fun _ -> ());
  let san = San.create () in
  San.attach san tr;
  let sched = Sched.create ~seed:1 ~trace:tr () in
  let lm = LockM.create sched (Oib_sim.Metrics.create ()) in
  let rid = Oib_util.Rid.make ~page:1 ~slot:0 in
  ignore (LockM.lock lm ~txn:1 (LockM.Record rid) LockM.X);
  ignore (LockM.lock lm ~txn:1 (LockM.Table 1) LockM.IX);
  LockM.unlock_all lm ~txn:1;
  ignore (LockM.lock lm ~txn:2 (LockM.Table 1) LockM.IX);
  ignore (LockM.lock lm ~txn:2 (LockM.Record rid) LockM.X);
  LockM.unlock_all lm ~txn:2;
  check_rules "lock-manager probes assemble the cycle" [ "SAN-order" ] san;
  Alcotest.(check bool)
    "both directions observed" true
    (List.mem
       ("lock:record", "lock:table")
       (San.runtime_edges san)
    && List.mem ("lock:table", "lock:record") (San.runtime_edges san))

(* --- WAL runtime verifier --- *)

let test_wal_lsn_monotonicity () =
  let san = San.create () in
  San.feed san 1
    (Probe.Lsn_set { page = 1; old_lsn = 10; new_lsn = 5; site = "t" });
  check_rules "LSN moved backwards" [ "SAN-wal" ] san

let test_wal_clr_discipline () =
  let san = San.create () in
  San.feed san 1 (Probe.Undo_begin { txn = 7 });
  San.feed san 1 (Probe.Log_append { txn = 7; kind = "heap" });
  San.feed san 1 (Probe.Undo_end { txn = 7 });
  check_rules "non-CLR append during undo" [ "SAN-wal" ] san;
  let ok = San.create () in
  San.feed ok 1 (Probe.Undo_begin { txn = 7 });
  San.feed ok 1 (Probe.Log_append { txn = 7; kind = "clr" });
  San.feed ok 1 (Probe.Log_append { txn = 7; kind = "abort" });
  San.feed ok 1 (Probe.Undo_end { txn = 7 });
  San.feed ok 1 (Probe.Log_append { txn = 7; kind = "heap" });
  check_rules "CLRs during undo are fine" [] ok

(* End to end: bump a page's LSN past the flushed horizon, then force a
   write-back through the test-only no-WAL steal. The probes from
   Page/Buffer_pool must carry the violation to the sanitizer. *)
let test_wal_steal_before_flush () =
  let tr = Trace.create () in
  Trace.set_on_dump tr (fun _ -> ());
  let san = San.create () in
  San.attach san tr;
  let ctx = Engine.create ~seed:5 ~page_capacity:512 ~trace:tr () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  (match
     Engine.run_txn ctx (fun txn ->
         for j = 0 to 5 do
           ignore
             (Table_ops.insert ctx txn ~table:1
                (Record.make [| Printf.sprintf "pk%02d" j; "v" |]))
         done)
   with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "populate aborted");
  Alcotest.(check bool) "clean so far" true (San.clean san);
  let heap = (Catalog.table ctx.Ctx.catalog 1).Catalog.heap in
  let page = Heap_file.page heap (List.hd (Heap_file.page_ids heap)) in
  Page.set_lsn page (Oib_wal.Lsn.of_int 9_999);
  Buffer_pool.unsafe_steal_without_wal ctx.Ctx.pool page;
  check_rules "steal before flush caught" [ "SAN-wal" ] san

(* --- shared-state interference automaton (the L12 dynamic twin) --- *)

let shared ~key ~write ~site = Probe.Shared { key; write; site }

(* read → unlatched yield → write on one shared-state instance is a
   crossing; the record is keyed by class (instance suffix stripped) so
   it lines up with the linter's atomics table. *)
let test_shared_crossing_detected () =
  let san = San.create () in
  San.feed san 1 (shared ~key:"Catalog.state(3)" ~write:false ~site:"guard");
  San.feed san 1 Probe.Yield;
  San.feed san 1 (shared ~key:"Catalog.state(3)" ~write:true ~site:"commit");
  Alcotest.(check (list (pair string string)))
    "crossing recorded per class with its witness"
    [ ("Catalog.state", "guard->commit") ]
    (San.shared_crossings san)

(* a latch held across the suspension keeps the section atomic — the
   same held=[] cut the static L10 makes (latched blocking is L2's). *)
let test_shared_latched_yield_atomic () =
  let san = San.create () in
  San.feed san 1 (latch_acq ~uid:1 ~page:7 ());
  San.feed san 1 (shared ~key:"Page.lsn" ~write:false ~site:"r");
  San.feed san 1 Probe.Yield;
  San.feed san 1 (shared ~key:"Page.lsn" ~write:true ~site:"w");
  San.feed san 1 (latch_rel ~uid:1 ~page:7 ());
  Alcotest.(check (list (pair string string)))
    "latched yield is not a crossing" []
    (San.shared_crossings san)

(* a fresh read after the yield re-validates: the write then acts on
   current state, mirroring the static rule's revalidation idiom *)
let test_shared_revalidation_clears () =
  let san = San.create () in
  San.feed san 1 (shared ~key:"Throttle.level" ~write:false ~site:"r1");
  San.feed san 1 Probe.Yield;
  San.feed san 1 (shared ~key:"Throttle.level" ~write:false ~site:"r2");
  San.feed san 1 (shared ~key:"Throttle.level" ~write:true ~site:"w");
  Alcotest.(check (list (pair string string)))
    "post-yield re-read clears staleness" []
    (San.shared_crossings san)

(* per-instance staleness: reading index 1 and writing index 2 is not a
   crossing, even though both share the Catalog.state class *)
let test_shared_instances_independent () =
  let san = San.create () in
  San.feed san 1 (shared ~key:"Catalog.state(1)" ~write:false ~site:"r");
  San.feed san 1 Probe.Yield;
  San.feed san 1 (shared ~key:"Catalog.state(2)" ~write:true ~site:"w");
  Alcotest.(check (list (pair string string)))
    "different instances do not alias" []
    (San.shared_crossings san)

let test_atomics_diff () =
  let san = San.create () in
  San.feed san 1 (shared ~key:"Catalog.state(1)" ~write:false ~site:"r");
  San.feed san 1 Probe.Yield;
  San.feed san 1 (shared ~key:"Catalog.state(1)" ~write:true ~site:"w");
  let rules_of ds =
    List.sort_uniq compare (List.map (fun (d : Diag.t) -> d.Diag.rule) ds)
  in
  Alcotest.(check (list string)) "dynamic-only crossing is an error"
    [ "SAN-atomics" ]
    (rules_of (San.diff_atomics san ~static:[]));
  Alcotest.(check int) "agreeing tables are silent" 0
    (List.length (San.diff_atomics san ~static:[ "Catalog.state" ]));
  let quiet = San.create () in
  Alcotest.(check (list string)) "static-only crossing is informational"
    [ "SAN-atomics-info" ]
    (rules_of (San.diff_atomics quiet ~static:[ "Range_set" ]))

let test_atomics_json_parse () =
  (match
     San.static_atomics_of_json
       "{\"schema\":\"oib-lint-atomics/v1\",\"crossing\":[\"A.x\",\"B.y\"],\"atomic\":[],\"units\":[]}"
   with
  | Ok ks ->
    Alcotest.(check (list string)) "crossing list parsed" [ "A.x"; "B.y" ] ks
  | Error e -> Alcotest.fail e);
  match San.static_atomics_of_json "{\"schema\":\"x\"}" with
  | Ok _ -> Alcotest.fail "missing crossing list must be rejected"
  | Error _ -> ()

(* --- clean full builds under the DST runner --- *)

let clean_build alg () =
  let tr = Trace.create () in
  Trace.set_on_dump tr (fun _ -> ());
  let san = San.create () in
  San.attach san tr;
  let sc = Scenario.generate ~seed:3 |> Scenario.override ~alg in
  let o = Runner.run ~trace:tr sc in
  Alcotest.(check bool) "oracle ok" false (Runner.failed o);
  Alcotest.(check (list string)) "sanitizer clean" [] (report_strings san)

(* --- static-vs-runtime latch-graph diff --- *)

let test_graph_json_roundtrip () =
  match
    San.static_graph_of_json
      {|{"edges":[{"from":"A","to":"B"},{"from":"B","to":"C"}]}|}
  with
  | Error e -> Alcotest.fail e
  | Ok edges ->
    Alcotest.(check (list (pair string string)))
      "parsed edges"
      [ ("A", "B"); ("B", "C") ]
      (List.sort compare edges)

let test_diff_static () =
  let san = San.create () in
  (* one observed latch edge A -> B, plus a lock edge that the static
     side can never see and so must not be reported as missed *)
  San.feed san 1 (latch_acq ~role:"A" ~uid:1 ~page:(-1) ());
  San.feed san 1 (latch_acq ~role:"B" ~uid:2 ~page:(-1) ());
  San.feed san 1 (lock_acq ~txn:1 ~target:"r" ~table:false ());
  Alcotest.(check bool)
    "A->B observed" true
    (List.mem ("A", "B") (San.runtime_edges san));
  (* static graph: agrees on A->B, has one edge the run never took *)
  let ds = San.diff_static san ~static:[ ("A", "B"); ("C", "D") ] in
  let msgs = List.map (fun (d : Diag.t) -> d.Diag.msg) ds in
  Alcotest.(check int) "one diff" 1 (List.length ds);
  Alcotest.(check bool)
    "unexercised static edge reported" true
    (List.exists
       (fun m ->
         contains m "C -> D"
         && contains m "never exercised")
       msgs);
  (* empty static graph: the observed latch edge is a miss, the lock
     edge is not *)
  let ds2 = San.diff_static san ~static:[] in
  Alcotest.(check int) "one runtime-only diff" 1 (List.length ds2);
  List.iter
    (fun (d : Diag.t) ->
      Alcotest.(check string) "rule" "SAN-graph" d.Diag.rule)
    (ds @ ds2)

(* The L5 fixture pair gives a non-empty static graph (the library tree
   itself latches in an order the linter proves acyclic, yielding no
   edges), so the diff path is exercised against real linter output. *)
let test_diff_against_lint_fixture () =
  let res =
    Oib_lint.Lint.run_files
      [
        Filename.concat "lint_fixtures" "l5_cycle_a.ml";
        Filename.concat "lint_fixtures" "l5_cycle_b.ml";
      ]
  in
  let static = res.Oib_lint.Lint.r_rules.Oib_lint.Rules.order_edges in
  Alcotest.(check bool) "fixture graph non-empty" true (static <> []);
  let san = San.create () in
  let ds = San.diff_static san ~static in
  Alcotest.(check int)
    "every static edge unexercised" (List.length static) (List.length ds)

(* --- report determinism --- *)

let plant_reports san =
  San.feed san 2 (Probe.Access { page = 2; write = true; site = "zz" });
  San.feed san 1 (latch_acq ~uid:4 ~page:2 ());
  San.feed san 1 (latch_rel ~uid:4 ~page:2 ());
  San.feed san 1
    (Probe.Lsn_set { page = 9; old_lsn = 4; new_lsn = 1; site = "aa" })

let test_reports_deterministic () =
  let a = San.create () and b = San.create () in
  plant_reports a;
  plant_reports b;
  Alcotest.(check (list string))
    "byte-identical reports" (report_strings a) (report_strings b);
  let sorted = List.sort Diag.compare (San.reports a) in
  Alcotest.(check (list string))
    "reports come out sorted" (List.map Diag.to_string sorted)
    (report_strings a)

let test_stats_json () =
  let san = San.create () in
  plant_reports san;
  San.feed san 0 (Probe.Epoch { label = "run" });
  let j = san |> San.stats_json in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (contains j needle))
    [ "\"events\":"; "\"runs\":1"; "\"races\":1"; "\"wal_violations\":1" ]

let () =
  Alcotest.run "san"
    [
      ( "lockset",
        [
          Alcotest.test_case "race detected" `Quick test_race_detected;
          Alcotest.test_case "same fiber clean" `Quick test_same_fiber_clean;
          Alcotest.test_case "spawn suppression" `Quick
            test_vc_spawn_suppression;
          Alcotest.test_case "latch handoff suppression" `Quick
            test_vc_latch_handoff_suppression;
          Alcotest.test_case "no handoff races" `Quick
            test_vc_no_handoff_races;
          Alcotest.test_case "evict clears shadow" `Quick
            test_evict_clears_shadow;
        ] );
      ( "goodlock",
        [
          Alcotest.test_case "inversion predicted" `Quick
            test_goodlock_inversion;
          Alcotest.test_case "conditional exempt" `Quick
            test_goodlock_conditional_exempt;
          Alcotest.test_case "across runs" `Quick test_goodlock_across_runs;
          Alcotest.test_case "via lock manager" `Quick
            test_goodlock_via_lock_manager;
        ] );
      ( "wal",
        [
          Alcotest.test_case "lsn monotonicity" `Quick
            test_wal_lsn_monotonicity;
          Alcotest.test_case "clr discipline" `Quick test_wal_clr_discipline;
          Alcotest.test_case "steal before flush" `Quick
            test_wal_steal_before_flush;
        ] );
      ( "atomics",
        [
          Alcotest.test_case "crossing detected" `Quick
            test_shared_crossing_detected;
          Alcotest.test_case "latched yield atomic" `Quick
            test_shared_latched_yield_atomic;
          Alcotest.test_case "revalidation clears" `Quick
            test_shared_revalidation_clears;
          Alcotest.test_case "instances independent" `Quick
            test_shared_instances_independent;
          Alcotest.test_case "static diff" `Quick test_atomics_diff;
          Alcotest.test_case "json parse" `Quick test_atomics_json_parse;
        ] );
      ( "clean builds",
        [
          Alcotest.test_case "nsf" `Quick (clean_build Scenario.Nsf);
          Alcotest.test_case "sf" `Quick (clean_build Scenario.Sf);
        ] );
      ( "graph diff",
        [
          Alcotest.test_case "json roundtrip" `Quick
            test_graph_json_roundtrip;
          Alcotest.test_case "diff static" `Quick test_diff_static;
          Alcotest.test_case "diff against lint fixture" `Quick
            test_diff_against_lint_fixture;
        ] );
      ( "reports",
        [
          Alcotest.test_case "deterministic" `Quick
            test_reports_deterministic;
          Alcotest.test_case "stats json" `Quick test_stats_json;
        ] );
    ]
