(* A trace-enabled online build: what the flight recorder sees.

   The same SF build as quickstart, but with the observability layer
   switched on. A live sink prints the build's phase transitions and
   checkpoints as they happen; afterwards we print the phase timeline
   from the build-progress API, the latency histograms the trace
   collected, and the tail of the flight recorder — the lines you would
   get dumped on a deadlock or crash.

   Run with: dune exec examples/traced_build.exe *)

open Oib_core
module Sched = Oib_sim.Sched
module Driver = Oib_workload.Driver
module Trace = Oib_obs.Trace
module Event = Oib_obs.Event
module FR = Oib_obs.Flight_recorder
module BS = Build_status

let () =
  let trace = Trace.create () in
  let recorder = Trace.attach_recorder trace ~capacity:64 in
  (* a sink is just a callback on stamped events; this one narrates the
     build's milestones and ignores the firehose of latch/lock/IO events *)
  Trace.add_sink trace ~name:"narrate" (fun s ->
      match s.Event.event with
      | Event.Ib_phase _ | Event.Ib_checkpoint _ | Event.Sidefile_drained _ ->
        print_endline ("  " ^ Event.to_line s)
      | _ -> ());
  let ctx = Engine.create ~seed:42 ~page_capacity:1024 ~trace () in
  let _ = Catalog.create_table ctx.Ctx.catalog ctx.Ctx.pool ~table_id:1 in
  let _ = Driver.populate ctx ~table:1 ~rows:1500 ~seed:42 in
  let _ =
    Driver.spawn_workers ctx
      { Driver.default with seed = 42; workers = 4; txns_per_worker = 40 }
      ~table:1
  in
  ignore
    (Sched.spawn ctx.Ctx.sched ~name:"ib" (fun () ->
         Ib.build_index ctx (Ib.default_config Ib.Sf) ~table:1
           { Ib.index_id = 10; key_cols = [ 0 ]; unique = false }));
  print_endline "build milestones as the trace sees them:";
  Sched.run ctx.Ctx.sched;
  (match Engine.consistency_errors ctx with
  | [] -> ()
  | errs ->
    List.iter prerr_endline errs;
    failwith "consistency violated");
  print_endline "\nbuild progress (queryable at any point during the build):";
  List.iter
    (fun (st : BS.t) ->
      Format.printf "  %a@." BS.pp st;
      print_string "  timeline:";
      List.iter
        (fun (p, step) -> Printf.printf " %s@%d" (BS.phase_name p) step)
        (BS.history st);
      print_newline ())
    (Engine.build_progress ctx);
  print_endline "\nlatency histograms (virtual-time steps):";
  Format.printf "%a@." Trace.pp_hists trace;
  Printf.printf
    "flight recorder holds the last %d of %d events; on Deadlock, Crashed\n\
     or an oracle failure this ring is dumped automatically. Its tail:\n"
    (FR.size recorder) (FR.total recorder);
  let contents = FR.contents recorder in
  let n = List.length contents in
  List.iteri
    (fun i s -> if i >= n - 8 then print_endline ("  " ^ Event.to_line s))
    contents
